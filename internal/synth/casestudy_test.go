package synth

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dynaminer/internal/wcg"
)

var csStart = time.Date(2016, 7, 10, 19, 0, 0, 0, time.UTC)

func TestStreamingSessionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ss := GenerateStreamingSession(csStart, rng)

	// Section VI-C: ~3000 transactions over 90 minutes.
	if n := len(ss.Episode.Txs); n < 2000 || n > 4500 {
		t.Fatalf("transactions = %d, want ~3000", n)
	}
	span := ss.Episode.Txs[len(ss.Episode.Txs)-1].ReqTime.Sub(ss.Episode.Txs[0].ReqTime)
	if span < 85*time.Minute || span > 100*time.Minute {
		t.Fatalf("session span = %v, want ~90 min", span)
	}

	// 32 downloads total, 5 malicious, exactly one fresh (the PDF).
	if len(ss.Downloads) != 32 {
		t.Fatalf("downloads = %d, want 32", len(ss.Downloads))
	}
	mal, fresh := 0, 0
	var freshExt string
	for _, d := range ss.Downloads {
		if d.Malicious {
			mal++
			if d.FirstSeen.Equal(d.Time) {
				fresh++
				freshExt = d.Ext
			}
		}
	}
	if mal != 5 {
		t.Fatalf("malicious downloads = %d, want 5", mal)
	}
	if fresh != 1 || freshExt != "pdf" {
		t.Fatalf("fresh downloads = %d (%s), want 1 pdf", fresh, freshExt)
	}

	// 12 unique remote domain names (raw-IP C&C endpoints excluded).
	hosts := make(map[string]bool)
	for _, tx := range ss.Episode.Txs {
		if _, err := netip.ParseAddr(tx.Host); err == nil {
			continue
		}
		hosts[tx.Host] = true
	}
	if len(hosts) != 12 {
		t.Fatalf("unique domains = %d, want 12", len(hosts))
	}

	// Redirect chains bounded by 4 per the case study.
	w := wcg.FromTransactions(ss.Episode.Txs)
	if st := w.RedirectStats(); st.MaxChainLen > 4 {
		t.Fatalf("max chain = %d, want <= 4", st.MaxChainLen)
	}
}

func TestStreamingSessionDeterministic(t *testing.T) {
	a := GenerateStreamingSession(csStart, rand.New(rand.NewSource(1)))
	b := GenerateStreamingSession(csStart, rand.New(rand.NewSource(1)))
	if len(a.Episode.Txs) != len(b.Episode.Txs) || len(a.Downloads) != len(b.Downloads) {
		t.Fatal("same seed must reproduce the session")
	}
}

func TestEnterprise48hShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ec := GenerateEnterprise48h(csStart, rng)

	if len(ec.Txs) == 0 {
		t.Fatal("no traffic")
	}
	// Time-ordered interleaving.
	for i := 1; i < len(ec.Txs); i++ {
		if ec.Txs[i].ReqTime.Before(ec.Txs[i-1].ReqTime) {
			t.Fatalf("transactions not time-ordered at %d", i)
		}
	}
	// Span close to 48 hours.
	span := ec.Txs[len(ec.Txs)-1].ReqTime.Sub(ec.Txs[0].ReqTime)
	if span < 20*time.Hour || span > 60*time.Hour {
		t.Fatalf("span = %v, want ~48h", span)
	}

	// Three distinct clients.
	clients := make(map[string]bool)
	for _, tx := range ec.Txs {
		clients[tx.ClientIP.String()] = true
	}
	if len(clients) != 3 {
		t.Fatalf("clients = %d, want 3", len(clients))
	}

	// Infection counts per host per Table VI: 4 + 3 + 1.
	infPerHost := make(map[string]int)
	trojanPDF := 0
	for _, d := range ec.Downloads {
		if d.Malicious {
			if d.Ext == "pdf" {
				trojanPDF++
			} else {
				infPerHost[d.HostName]++
			}
		}
	}
	if infPerHost["win-host"] != 4 || infPerHost["ubuntu-host"] != 3 || infPerHost["macos-host"] != 1 {
		t.Fatalf("infections per host = %v, want 4/3/1", infPerHost)
	}
	if trojanPDF != 2 {
		t.Fatalf("trojanized PDFs = %d, want 2", trojanPDF)
	}

	// Benign download schedule delivered (62 total downloads per paper:
	// the plan plus infections; allow the schedule to not fully drain).
	if len(ec.Downloads) < 40 {
		t.Fatalf("downloads = %d, too few", len(ec.Downloads))
	}
}

func TestTable6HostProfiles(t *testing.T) {
	if len(Table6Hosts) != 3 {
		t.Fatal("want 3 hosts")
	}
	totalInf := 0
	for _, h := range Table6Hosts {
		totalInf += len(h.InfectionExts)
	}
	if totalInf != 8 {
		t.Fatalf("total embedded infections = %d, want 8 (Table VI alerts)", totalInf)
	}
}
