package analysis

import (
	"go/ast"
	"go/token"
)

// Hostfold flags case-sensitive use of raw host values. DNS names are
// case-insensitive (RFC 4343), and PR 1 fixed a real bug where a
// mixed-case Host header split one session cluster in two and let a
// redirect chain evade linkage. The detector now folds hosts to lowercase
// at extraction; this analyzer keeps every *new* comparison honest.
//
// It reports a bare `X.Host` selector (or `X.Referer()` call) used as:
//
//   - an operand of == or != (comparisons against the empty string are
//     emptiness checks, not identity checks, and stay exempt),
//   - a map/array index key,
//   - a switch tag or a case value of such a switch.
//
// Folded expressions pass automatically because they are no longer bare
// selectors: strings.ToLower(r.Host) == x, strings.EqualFold(a, b),
// hostOf(tx.Referer()) and the like are calls, not raw field reads.
type Hostfold struct{}

// Name implements Analyzer.
func (Hostfold) Name() string { return "hostfold" }

// Doc implements Analyzer.
func (Hostfold) Doc() string {
	return "raw Host/Referer values compared, indexed, or switched on without case folding"
}

// hostSource reports whether e is a bare read of a raw host-carrying
// value: a selector whose field is exactly "Host", or a call to a
// zero-argument Referer() method.
func hostSource(e ast.Expr) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name == "Host" {
			return chainText(x), true
		}
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Referer" && len(x.Args) == 0 {
			return chainText(x), true
		}
	}
	return "", false
}

// Run implements Analyzer.
func (h Hostfold) Run(pass *Pass) []Finding {
	var out []Finding
	report := func(pos token.Pos, what string) {
		out = append(out, pass.finding(h.Name(), pos,
			"%s used case-sensitively; DNS names are case-insensitive — fold with strings.ToLower or compare with strings.EqualFold", what))
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				// "" comparisons test presence, not identity.
				if isEmptyStringLit(x.X) || isEmptyStringLit(x.Y) {
					return true
				}
				// One finding per comparison, even when both sides are raw.
				for _, side := range []ast.Expr{x.X, x.Y} {
					if what, ok := hostSource(side); ok {
						report(side.Pos(), what)
						break
					}
				}
			case *ast.IndexExpr:
				if what, ok := hostSource(x.Index); ok {
					report(x.Index.Pos(), what+" (map key)")
				}
			case *ast.SwitchStmt:
				tag, ok := hostSource(x.Tag)
				if !ok {
					return true
				}
				report(x.Tag.Pos(), tag+" (switch tag)")
				return true
			}
			return true
		})
	}
	return out
}
