package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc turns the project's zero-alloc benchmark assertions into
// line-level findings. A function annotated with a "//dynalint:hotpath"
// doc comment declares that its steady state allocates nothing — the
// contract the PR 5/6 alloc-count tests enforce for FlatForest scoring,
// the feature cache, the graph scratch analytics, and the pooled
// httpstream parse path. Inside an annotated function the analyzer
// flags every allocation site:
//
//   - make and new calls;
//   - append calls that may grow beyond capacity;
//   - string concatenation (+ on strings builds a new string);
//   - string<->[]byte/[]rune conversions (typed passes only);
//   - arguments boxed into interface parameters (typed passes only;
//     pointer-shaped values are exempt — they fit the interface word);
//   - function literals (a closure that escapes allocates its context).
//
// Two idioms are recognized as cold and exempted without a directive:
//
//   - grow-on-demand: an allocation inside an if whose condition calls
//     cap(...) only fires until the buffer reaches steady-state size
//     (`if cap(dst) < n { dst = make(...) }`);
//   - failure paths: an allocation inside an if whose body panics is
//     the diagnostic for a bug, not the hot path;
//   - amortized reuse: an append whose destination the function also
//     reslices (q = q[:0], or carves from an arena with s[i] =
//     arena[a:b:c]) appends into retained capacity.
//
// Anything else that allocates deliberately (a parallel fan-out
// launching goroutines, say) carries a reasoned //dynalint:ignore
// hotalloc directive — the suppression is the documentation.
type Hotalloc struct{}

// Name implements Analyzer.
func (Hotalloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (Hotalloc) Doc() string {
	return `allocation sites in functions annotated "//dynalint:hotpath" (zero-alloc steady state enforced at lint time)`
}

// hotpathAnnotated reports whether the function declaration carries the
// //dynalint:hotpath marker in its doc comment group.
func hotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
		if strings.HasPrefix(text, "dynalint:hotpath") {
			return true
		}
	}
	return false
}

// coldGuarded reports whether the node at the top of the stack sits
// inside an if statement that either panics (failure diagnostics) or
// whose condition calls cap(...) (the grow-on-demand idiom).
func coldGuarded(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifst, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condCallsCap(ifst.Cond) || blockPanics(ifst.Body) {
			return true
		}
		if ifst.Init != nil && condCallsCapStmt(ifst.Init) {
			return true
		}
	}
	return false
}

// condCallsCapStmt reports whether the statement (an if's init) contains
// a cap(...) call — `if rem := cap(dst) - n; rem < 0 { ... }` is the
// same grow-on-demand guard with the measurement hoisted.
func condCallsCapStmt(st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// condCallsCap reports whether the expression contains a cap(...) call.
func condCallsCap(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// blockPanics reports whether the block contains a panic call.
func blockPanics(body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootChainText renders the base chain of an expression with index
// subscripts dropped: s.und[a] and s.und[b] both yield "s.und", so a
// reslice of any element sanctions appends into every element of the
// same arena-backed family.
func rootChainText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := rootChainText(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.IndexExpr:
		return rootChainText(x.X)
	case *ast.SliceExpr:
		return rootChainText(x.X)
	case *ast.ParenExpr:
		return rootChainText(x.X)
	case *ast.StarExpr:
		return rootChainText(x.X)
	case *ast.UnaryExpr:
		return rootChainText(x.X)
	}
	return ""
}

// resliceRoots collects the root chains the function reslices: every
// assignment whose right-hand side is a slice expression (q = q[:0],
// s.und[u] = s.arenaU[off:off:end]). Appends into those roots reuse
// retained capacity.
func resliceRoots(body *ast.BlockStmt) map[string]bool {
	roots := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if _, ok := unparen(rhs).(*ast.SliceExpr); !ok {
				continue
			}
			if root := rootChainText(as.Lhs[i]); root != "" {
				roots[root] = true
			}
		}
		return true
	})
	return roots
}

// isStringBasic reports whether t's underlying type is string.
func isStringBasic(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit an interface's data word
// without allocating: pointers, channels, maps, funcs, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// Run implements Analyzer.
func (h Hotalloc) Run(pass *Pass) []Finding {
	var out []Finding
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotpathAnnotated(fd) {
				continue
			}
			out = append(out, h.checkFunc(pass, fd)...)
		}
	}
	return out
}

// checkFunc scans one annotated function for allocation sites.
func (h Hotalloc) checkFunc(pass *Pass, fd *ast.FuncDecl) []Finding {
	var out []Finding
	reuse := resliceRoots(fd.Body)
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, pass.finding(h.Name(), pos, format, args...))
	}
	walkStack(fd.Body, func(stack []ast.Node) {
		switch x := stack[len(stack)-1].(type) {
		case *ast.FuncLit:
			if !coldGuarded(stack) {
				report(x.Pos(), "closure in a hotpath function allocates its context when it escapes; hoist it or suppress with a reason")
			}
		case *ast.BinaryExpr:
			if x.Op != token.ADD || coldGuarded(stack) {
				return
			}
			if h.stringOperand(pass, x.X) || h.stringOperand(pass, x.Y) {
				report(x.Pos(), "string concatenation in a hotpath function allocates; build into a reused buffer in cold code")
			}
		case *ast.CallExpr:
			out = append(out, h.checkCall(pass, stack, x, reuse)...)
		}
	})
	return out
}

// stringOperand reports whether e is string-typed (typed passes) or a
// string literal (the untyped fallback).
func (Hotalloc) stringOperand(pass *Pass, e ast.Expr) bool {
	if pass.Typed() {
		return isStringBasic(pass.TypeOf(e))
	}
	lit, ok := unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// checkCall flags allocating calls: make/new, unamortized appends,
// allocating conversions, and interface-boxing arguments.
func (h Hotalloc) checkCall(pass *Pass, stack []ast.Node, call *ast.CallExpr, reuse map[string]bool) []Finding {
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, pass.finding(h.Name(), pos, format, args...))
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if !coldGuarded(stack) {
				report(call.Pos(), "%s in a hotpath function allocates every call; preallocate in cold code or guard with a cap(...) check", id.Name)
			}
			return out
		case "append":
			if coldGuarded(stack) || len(call.Args) == 0 {
				return out
			}
			if root := rootChainText(call.Args[0]); root != "" && reuse[root] {
				return out // amortized reuse: the function reslices this root
			}
			report(call.Pos(), "append in a hotpath function may grow beyond capacity; reuse via a [:0] reslice or preallocate")
			return out
		}
	}
	if !pass.Typed() {
		return out
	}
	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := pass.TypeOf(call), pass.TypeOf(call.Args[0])
		if (isStringBasic(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringBasic(src)) {
			if !coldGuarded(stack) {
				report(call.Pos(), "string conversion in a hotpath function copies its payload; keep one representation on the hot path")
			}
		}
		return out
	}
	// Interface boxing: concrete non-pointer values stored in interface
	// parameters escape to the heap.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos || coldGuarded(stack) {
		return out
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument boxed into an interface parameter allocates in a hotpath function; avoid the interface or move the call to cold code")
	}
	return out
}
