package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// Checker type-checks parsed packages with stdlib go/types. Imports
// resolve through compiled export data located by one `go list -export`
// invocation per run, so the checker needs nothing outside the standard
// toolchain and shares a single package cache across every Check call —
// the driver analyzes packages in parallel, and Check serializes
// internally because go/types mutates the shared importer state.
//
// Check is best-effort by design: a package that does not type-check (a
// missing dependency, a compile error, a tree without a go.mod) returns
// an error and the caller degrades that package to syntactic-only
// analysis instead of failing the run.
type Checker struct {
	fset *token.FileSet
	dir  string
	// Tests includes each package's test dependencies in the export-data
	// listing (needed when _test.go files are being type-checked).
	Tests bool

	mu      sync.Mutex
	loaded  bool
	listErr error
	exports map[string]string
	imp     types.ImporterFrom
}

// NewChecker returns a Checker rooted at the module directory dir. All
// files passed to Check must have been parsed on fset.
func NewChecker(fset *token.FileSet, dir string) *Checker {
	return &Checker{fset: fset, dir: dir}
}

// loadExports runs `go list -export` once and indexes import path ->
// export-data file for the module's packages and their full dependency
// closure (the standard library included).
func (c *Checker) loadExports() error {
	if c.loaded {
		return c.listErr
	}
	c.loaded = true
	args := []string{"list", "-e", "-export", "-deps"}
	if c.Tests {
		args = append(args, "-test")
	}
	args = append(args, "-f", "{{.ImportPath}}={{.Export}}", "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = c.dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		c.listErr = fmt.Errorf("go list -export: %s", msg)
		return c.listErr
	}
	c.exports = map[string]string{}
	for _, line := range strings.Split(string(out), "\n") {
		if i := strings.IndexByte(line, '='); i > 0 && i < len(line)-1 {
			c.exports[line[:i]] = line[i+1:]
		}
	}
	c.imp = importer.ForCompiler(c.fset, "gc", c.lookup).(types.ImporterFrom)
	return nil
}

// lookup opens the export data for one import path.
func (c *Checker) lookup(path string) (io.ReadCloser, error) {
	p, ok := c.exports[path]
	if !ok || p == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(p)
}

// Import implements types.Importer.
func (c *Checker) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom over the export-data index.
func (c *Checker) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return c.imp.ImportFrom(path, dir, mode)
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Check type-checks one package's files under the given import path and
// returns the filled Info. Any type error (the first is reported) means
// the package could not be fully checked; callers degrade it to
// syntactic analysis.
func (c *Checker) Check(pkgPath string, files []*ast.File) (*types.Info, *types.Package, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.loadExports(); err != nil {
		return nil, nil, err
	}
	info := NewInfo()
	var firstErr error
	conf := types.Config{
		Importer: c,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(pkgPath, c.fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return info, pkg, nil
}
