package analysis

import (
	"go/ast"
)

// Scratchsafe keeps graph.Scratch workspaces reusable. A Scratch owns
// arena-backed slices that every call overwrites; the zero-alloc steady
// state of the incremental classification pipeline only holds because no
// caller retains that storage past the call that borrowed it. A function
// that takes a *graph.Scratch parameter and returns a scratch-rooted
// slice, stores one in a struct field, or appends one into a retained
// slice hands out memory the next measurement will silently overwrite —
// features computed from it change value after the fact.
//
// The analyzer is syntactic (no type information): it scopes on
// parameters whose type renders literally as *graph.Scratch, which is how
// every consumer outside package graph names the type. Within package
// graph the type is the unqualified *Scratch, so the workspace's own
// plumbing — which legitimately hands its slices around — stays out of
// scope. Flagged inside a scoped function (closures included):
//
//   - returning an expression rooted at the scratch parameter
//     (return s.dist, return s.rows[u]);
//   - assigning such an expression to a struct field (c.buf = s.dist);
//   - appending one into a field (c.rows = append(c.rows, s.dist));
//   - carrying one in a composite-literal field (T{buf: s.dist}).
//
// Passing the scratch or its slices as call arguments is the intended
// use and never flagged, as is storing the *Scratch pointer itself
// (ownership transfer, the feature-cache pattern).
type Scratchsafe struct{}

// Name implements Analyzer.
func (Scratchsafe) Name() string { return "scratchsafe" }

// Doc implements Analyzer.
func (Scratchsafe) Doc() string {
	return "scratch-workspace slices escaping via returns or struct fields (next use overwrites them)"
}

// scratchParams collects the parameter names of ft declared as
// *graph.Scratch.
func scratchParams(ft *ast.FuncType) map[string]bool {
	out := map[string]bool{}
	if ft == nil || ft.Params == nil {
		return out
	}
	for _, fld := range ft.Params.List {
		star, ok := fld.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "graph" || sel.Sel.Name != "Scratch" {
			continue
		}
		for _, name := range fld.Names {
			if name.Name != "_" {
				out[name.Name] = true
			}
		}
	}
	return out
}

// rootName descends selector/index/slice chains to the base identifier;
// calls and other shapes yield "" (their results are not scratch storage
// as far as syntax can tell).
func rootName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return rootName(x.X)
	case *ast.IndexExpr:
		return rootName(x.X)
	case *ast.SliceExpr:
		return rootName(x.X)
	case *ast.ParenExpr:
		return rootName(x.X)
	case *ast.StarExpr:
		return rootName(x.X)
	case *ast.UnaryExpr:
		return rootName(x.X)
	}
	return ""
}

// scratchRooted reports whether e selects into a scratch parameter's
// storage. A bare identifier (the scratch itself) is exempt: retaining
// the pointer is ownership transfer, not slice leakage.
func scratchRooted(e ast.Expr, params map[string]bool) bool {
	if _, bare := unparen(e).(*ast.Ident); bare {
		return false
	}
	return params[rootName(e)]
}

// appendLeak reports whether e is an append call with a scratch-rooted
// argument: append retains the slice header it is given.
func appendLeak(e ast.Expr, params map[string]bool) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	for _, a := range call.Args {
		if scratchRooted(a, params) {
			return true
		}
	}
	return false
}

// Run implements Analyzer.
func (sc Scratchsafe) Run(pass *Pass) []Finding {
	var out []Finding
	report := func(pos ast.Node, what string) {
		out = append(out, pass.finding(sc.Name(), pos.Pos(),
			what+" escapes the reusable scratch workspace; the next measurement overwrites this storage in place"))
	}
	var check func(body *ast.BlockStmt, params map[string]bool)
	check = func(body *ast.BlockStmt, params map[string]bool) {
		if body == nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				// Closures inherit the enclosing scratch parameters (they
				// capture them) plus any of their own.
				inner := scratchParams(x.Type)
				for name := range params {
					if _, shadowed := inner[name]; !shadowed {
						inner[name] = true
					}
				}
				check(x.Body, inner)
				return false
			case *ast.ReturnStmt:
				if len(params) == 0 {
					return true
				}
				for _, res := range x.Results {
					if scratchRooted(res, params) {
						report(res, "returned scratch-rooted slice")
					}
				}
			case *ast.AssignStmt:
				if len(params) == 0 || len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					if _, field := unparen(lhs).(*ast.SelectorExpr); !field {
						continue
					}
					if scratchRooted(x.Rhs[i], params) {
						report(x.Rhs[i], "scratch-rooted slice stored in a struct field")
					} else if appendLeak(x.Rhs[i], params) {
						report(x.Rhs[i], "scratch-rooted slice appended into a struct field")
					}
				}
			case *ast.KeyValueExpr:
				if len(params) == 0 {
					return true
				}
				if scratchRooted(x.Value, params) {
					report(x.Value, "scratch-rooted slice carried in a composite literal")
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			check(fd.Body, scratchParams(fd.Type))
		}
	}
	return out
}
