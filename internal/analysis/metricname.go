package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Metricname pins the observability inventory conventions (PR 5, DESIGN.md
// §10). Every metric registered on an obs registry must be greppable,
// Prometheus-legal, and self-describing:
//
//  1. snake_case: names and GaugeVec labels match [a-z][a-z0-9_]* with no
//     empty segments — mixed case and dashes break PromQL ergonomics and
//     the registry's own ValidateMetricName would reject them at runtime;
//     the analyzer moves that failure to lint time.
//  2. unit suffix: every metric name ends in _seconds, _bytes, or _total,
//     so a dashboard reader never has to guess the unit.
//  3. unique per package: the same literal name registered twice in one
//     package is almost always a copy-paste slip; the registry's
//     get-or-create semantics would silently alias the two call sites.
//
// Since PR 10 the same analyzer also pins the tracing span inventory:
// every X.Stage(name) interning must use a lowercase dotted
// "stage.substage" literal (two or more dot-separated snake_case
// segments, mirroring obs.ValidateSpanName, which would otherwise panic
// at runtime), and interning the same span literal twice in one package
// is flagged — Stage is get-or-create, so a duplicate literal means two
// call sites silently share one latency histogram and EWMA.
//
// The analyzer is syntactic: it inspects calls X.Counter(name, help),
// X.Gauge(name, help), X.Histogram(name, help, buckets),
// X.GaugeVec(name, help, label) and X.Stage(name) whose name argument is
// a string literal. Dynamic names (helper functions forwarding a name
// parameter) are out of reach without type information and are skipped —
// the runtime validator still covers them.
type Metricname struct{}

// Name implements Analyzer.
func (Metricname) Name() string { return "metricname" }

// Doc implements Analyzer.
func (Metricname) Doc() string {
	return "metric registrations with non-snake_case names, missing unit suffixes, or per-package duplicates"
}

// registerArity maps obs registration method names to their exact
// argument count; the name is always the first argument.
var registerArity = map[string]int{
	"Counter":   2, // name, help
	"Gauge":     2, // name, help
	"Histogram": 3, // name, help, bounds
	"GaugeVec":  3, // name, help, label
}

// metricSuffixes are the unit suffixes the inventory admits.
var metricSuffixes = []string{"_seconds", "_bytes", "_total"}

// snakeCase reports whether s is non-empty lowercase snake_case with no
// empty segments (mirrors obs.ValidateMetricName's character rules).
func snakeCase(s string) bool {
	if s == "" || s[0] == '_' || s[len(s)-1] == '_' || strings.Contains(s, "__") {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// spanName reports whether s is a lowercase dotted span name: two or
// more dot-separated segments, each [a-z][a-z0-9_]* (the grammar
// obs.ValidateSpanName enforces at runtime).
func spanName(s string) bool {
	segs := strings.Split(s, ".")
	if len(segs) < 2 {
		return false
	}
	for _, seg := range segs {
		if seg == "" || seg[0] < 'a' || seg[0] > 'z' || !snakeCase(seg) {
			return false
		}
	}
	return true
}

// stringLit unquotes e when it is a string literal, reporting ok.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// Run implements Analyzer.
func (m Metricname) Run(pass *Pass) []Finding {
	var out []Finding
	seen := map[string]token.Pos{}     // literal metric name -> first registration
	seenSpan := map[string]token.Pos{} // literal span name -> first interning
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Stage" && len(call.Args) == 1 {
				name, ok := stringLit(call.Args[0])
				if !ok {
					return true // dynamic name: obs.ValidateSpanName covers it
				}
				if !spanName(name) {
					out = append(out, pass.finding(m.Name(), call.Args[0].Pos(),
						"span name %q is not lowercase dotted stage.substage (two or more [a-z][a-z0-9_]* segments); Tracer.Stage would panic at runtime", name))
				}
				if first, dup := seenSpan[name]; dup {
					out = append(out, pass.finding(m.Name(), call.Args[0].Pos(),
						"span %q already interned at %s in this package; Stage is get-or-create, so the two sites would share one histogram and EWMA",
						name, pass.Fset.Position(first)))
				} else {
					seenSpan[name] = call.Args[0].Pos()
				}
				return true
			}
			arity, ok := registerArity[sel.Sel.Name]
			if !ok || len(call.Args) != arity {
				return true
			}
			name, ok := stringLit(call.Args[0])
			if !ok {
				return true // dynamic name: the runtime validator covers it
			}
			if !snakeCase(name) {
				out = append(out, pass.finding(m.Name(), call.Args[0].Pos(),
					"metric name %q is not snake_case ([a-z][a-z0-9_]*, no empty segments)", name))
			} else if !hasMetricSuffix(name) {
				out = append(out, pass.finding(m.Name(), call.Args[0].Pos(),
					"metric name %q lacks a unit suffix (want _seconds, _bytes, or _total)", name))
			}
			if first, dup := seen[name]; dup {
				out = append(out, pass.finding(m.Name(), call.Args[0].Pos(),
					"metric %q already registered at %s in this package; get-or-create would silently alias the two sites",
					name, pass.Fset.Position(first)))
			} else {
				seen[name] = call.Args[0].Pos()
			}
			if sel.Sel.Name == "GaugeVec" {
				if label, ok := stringLit(call.Args[2]); ok && !snakeCase(label) {
					out = append(out, pass.finding(m.Name(), call.Args[2].Pos(),
						"GaugeVec label %q is not snake_case", label))
				}
			}
			return true
		})
	}
	return out
}

// hasMetricSuffix reports whether name ends in an admitted unit suffix.
func hasMetricSuffix(name string) bool {
	for _, s := range metricSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}
