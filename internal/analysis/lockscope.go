package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockscope enforces the engine/proxy lock discipline: a struct field
// annotated with a "guarded by <mu>" comment may only be read or written
// by a function that locks <mu> on the same receiver chain. PR 1
// re-architected the proxy so detection runs outside p.mu while the
// blocklist and counters stay inside it; this analyzer keeps that split
// from regressing as handlers grow.
//
// On a typed Pass, field and receiver identity resolve through go/types
// objects: an access through a pointer alias (`e := eng; e.hits++` after
// `eng.mu.Lock()`) matches the lock on the original receiver, and a
// method that locks a mutex through a value receiver is flagged — the
// receiver is a copy, so the lock protects nothing. Without type
// information the analyzer falls back to textual chain matching: an
// access `base.field` is sanctioned when the enclosing function anywhere
// calls `base.<mu>.Lock()` or `base.<mu>.RLock()` with the identical
// base chain.
//
// In both modes the check is flow-insensitive. Functions whose name ends
// in "Locked" are exempt (the caller holds the lock by contract), as is
// anything under a //dynalint:ignore lockscope directive.
type Lockscope struct{}

// Name implements Analyzer.
func (Lockscope) Name() string { return "lockscope" }

// Doc implements Analyzer.
func (Lockscope) Doc() string {
	return `fields annotated "guarded by <mu>" accessed without locking that mutex (typed: resolves aliases, flags value-receiver mutex copies)`
}

// guardedField is one annotated struct field.
type guardedField struct {
	structName string
	mu         string
}

// collectGuarded scans the package's struct declarations for fields whose
// doc or trailing comment says "guarded by <name>", returning
// fieldName -> annotation. Field names are package-unique enough for a
// project lint; a collision shows up as a false positive to triage.
func collectGuarded(files []*ast.File) map[string]guardedField {
	guarded := map[string]guardedField{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field.Doc)
				if mu == "" {
					mu = guardAnnotation(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guarded[name.Name] = guardedField{structName: ts.Name.Name, mu: mu}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a "guarded by <mu>"
// comment group, or "".
func guardAnnotation(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	text := cg.Text()
	i := strings.Index(text, "guarded by ")
	if i < 0 {
		return ""
	}
	rest := strings.Fields(text[i+len("guarded by "):])
	if len(rest) == 0 {
		return ""
	}
	return strings.Trim(rest[0], ".,;:")
}

// lockedChains collects "base|mu" keys for every <base>.<mu>.Lock/RLock
// call in a function body (the syntactic fallback).
func lockedChains(body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base := chainText(muSel.X); base != "" {
			locked[base+"|"+muSel.Sel.Name] = true
		}
		return true
	})
	return locked
}

// Run implements Analyzer.
func (l Lockscope) Run(pass *Pass) []Finding {
	if pass.Typed() {
		return l.runTyped(pass)
	}
	return l.runSyntactic(pass)
}

// runSyntactic is the pre-typed matcher, kept as the degraded path.
func (l Lockscope) runSyntactic(pass *Pass) []Finding {
	guarded := collectGuarded(pass.Files)
	if len(guarded) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			locked := lockedChains(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				g, isGuarded := guarded[sel.Sel.Name]
				if !isGuarded {
					return true
				}
				base := chainText(sel.X)
				if base == "" || locked[base+"|"+g.mu] {
					return true
				}
				out = append(out, pass.finding(l.Name(), sel.Pos(),
					"%s.%s is guarded by %s.%s, but %s never locks it (lock it, or suffix the func name with Locked if the caller holds it)",
					base, sel.Sel.Name, base, g.mu, fn.Name.Name))
				return true
			})
		}
	}
	return out
}

// runTyped resolves guarded fields and receiver chains through go/types
// objects, so pointer aliases match and mutex copies are caught.
func (l Lockscope) runTyped(pass *Pass) []Finding {
	guarded := collectGuardedTyped(pass)
	var out []Finding
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Locking through a value receiver is a bug even in *Locked
			// helpers, so check it before the suffix exemption.
			out = append(out, l.checkValueReceiver(pass, fn)...)
			if strings.HasSuffix(fn.Name.Name, "Locked") || len(guarded) == 0 {
				continue
			}
			aliases := pointerAliases(pass, fn.Body)
			locked := lockedChainsTyped(pass, fn.Body, aliases)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				mu, isGuarded := guarded[fieldObject(pass, sel)]
				if !isGuarded {
					return true
				}
				base := typedChainKey(pass, sel.X, aliases)
				if base == "" || locked[base+"|"+mu] {
					return true
				}
				out = append(out, pass.finding(l.Name(), sel.Pos(),
					"%s.%s is guarded by %s.%s, but %s never locks it (lock it, or suffix the func name with Locked if the caller holds it)",
					chainText(sel.X), sel.Sel.Name, chainText(sel.X), mu, fn.Name.Name))
				return true
			})
		}
	}
	return out
}

// collectGuardedTyped maps annotated field objects to their mutex field
// name.
func collectGuardedTyped(pass *Pass) map[types.Object]string {
	guarded := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field.Doc)
				if mu == "" {
					mu = guardAnnotation(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// fieldObject resolves the object a selector expression selects.
func fieldObject(pass *Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.Info.Selections[sel]; ok {
		return s.Obj()
	}
	return pass.Info.Uses[sel.Sel]
}

// pointerAliases maps local objects introduced by pointer-copy
// assignments (`e := eng`, `e := &eng`) to the canonical chain key of
// their source, one level deep. Value copies are not aliases — copying
// a struct detaches it from the guarded original.
func pointerAliases(pass *Pass, body *ast.BlockStmt) map[types.Object]string {
	aliases := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			rhs := unparen(as.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = unparen(u.X)
			} else if t := pass.TypeOf(rhs); t == nil {
				continue
			} else if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
				continue
			}
			if key := typedChainKey(pass, rhs, aliases); key != "" {
				aliases[obj] = key
			}
		}
		return true
	})
	return aliases
}

// typedChainKey renders a selector chain as a canonical key rooted at
// the go/types object of its base identifier, following pointer aliases.
// Two chains get the same key exactly when they provably denote the same
// variable path.
func typedChainKey(pass *Pass, e ast.Expr, aliases map[types.Object]string) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(x)
		if obj == nil {
			return ""
		}
		if root, ok := aliases[obj]; ok {
			return root
		}
		return pass.Fset.Position(obj.Pos()).String()
	case *ast.SelectorExpr:
		base := typedChainKey(pass, x.X, aliases)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return typedChainKey(pass, x.X, aliases)
	}
	return ""
}

// lockedChainsTyped collects "baseKey|mu" for every <base>.<mu>.Lock or
// RLock call, with base resolved through objects and aliases.
func lockedChainsTyped(pass *Pass, body *ast.BlockStmt, aliases map[types.Object]string) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base := typedChainKey(pass, muSel.X, aliases); base != "" {
			locked[base+"|"+muSel.Sel.Name] = true
		}
		return true
	})
	return locked
}

// checkValueReceiver flags a method that locks a sync.Mutex/RWMutex
// reached through a value receiver: the receiver is a copy, so the lock
// guards nothing the caller can see.
func (l Lockscope) checkValueReceiver(pass *Pass, fn *ast.FuncDecl) []Finding {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	recv := fn.Recv.List[0]
	if rt := pass.TypeOf(recv.Type); rt == nil {
		return nil
	} else if _, isPtr := rt.(*types.Pointer); isPtr {
		return nil
	}
	recvObj := pass.ObjectOf(recv.Names[0])
	if recvObj == nil {
		return nil
	}
	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || pass.ObjectOf(root) != recvObj || !isMutexType(pass.TypeOf(sel.X)) {
			return true
		}
		out = append(out, pass.finding(l.Name(), call.Pos(),
			"%s locks a mutex through value receiver %s — the receiver is a copy, so this lock protects nothing; use a pointer receiver",
			fn.Name.Name, root.Name))
		return true
	})
	return out
}

// rootIdent returns the identifier at the base of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
