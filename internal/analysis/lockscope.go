package analysis

import (
	"go/ast"
	"strings"
)

// Lockscope enforces the engine/proxy lock discipline: a struct field
// annotated with a "guarded by <mu>" comment may only be read or written
// by a function that locks <mu> on the same receiver chain. PR 1
// re-architected the proxy so detection runs outside p.mu while the
// blocklist and counters stay inside it; this analyzer keeps that split
// from regressing as handlers grow.
//
// Matching is syntactic and flow-insensitive: an access `base.field` is
// sanctioned when the enclosing function anywhere calls
// `base.<mu>.Lock()` or `base.<mu>.RLock()` with the identical base
// chain. Functions whose name ends in "Locked" are exempt (the caller
// holds the lock by contract), as is anything under a
// //dynalint:ignore lockscope directive.
type Lockscope struct{}

// Name implements Analyzer.
func (Lockscope) Name() string { return "lockscope" }

// Doc implements Analyzer.
func (Lockscope) Doc() string {
	return `fields annotated "guarded by <mu>" accessed without locking that mutex`
}

// guardedField is one annotated struct field.
type guardedField struct {
	structName string
	mu         string
}

// collectGuarded scans the package's struct declarations for fields whose
// doc or trailing comment says "guarded by <name>", returning
// fieldName -> annotation. Field names are package-unique enough for a
// project lint; a collision shows up as a false positive to triage.
func collectGuarded(files []*ast.File) map[string]guardedField {
	guarded := map[string]guardedField{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field.Doc)
				if mu == "" {
					mu = guardAnnotation(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guarded[name.Name] = guardedField{structName: ts.Name.Name, mu: mu}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a "guarded by <mu>"
// comment group, or "".
func guardAnnotation(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	text := cg.Text()
	i := strings.Index(text, "guarded by ")
	if i < 0 {
		return ""
	}
	rest := strings.Fields(text[i+len("guarded by "):])
	if len(rest) == 0 {
		return ""
	}
	return strings.Trim(rest[0], ".,;:")
}

// lockedChains collects "base|mu" keys for every <base>.<mu>.Lock/RLock
// call in a function body.
func lockedChains(body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base := chainText(muSel.X); base != "" {
			locked[base+"|"+muSel.Sel.Name] = true
		}
		return true
	})
	return locked
}

// Run implements Analyzer.
func (l Lockscope) Run(pass *Pass) []Finding {
	guarded := collectGuarded(pass.Files)
	if len(guarded) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			locked := lockedChains(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				g, isGuarded := guarded[sel.Sel.Name]
				if !isGuarded {
					return true
				}
				base := chainText(sel.X)
				if base == "" || locked[base+"|"+g.mu] {
					return true
				}
				out = append(out, pass.finding(l.Name(), sel.Pos(),
					"%s.%s is guarded by %s.%s, but %s never locks it (lock it, or suffix the func name with Locked if the caller holds it)",
					base, sel.Sel.Name, base, g.mu, fn.Name.Name))
				return true
			})
		}
	}
	return out
}
