package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// parsePass parses every .go file in dir into one Pass.
func parsePass(t *testing.T, dir, pkgPath string) *Pass {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixtures in %s", dir)
	}
	return NewPass(fset, pkgPath, files)
}

// wantRe matches `// want "substring"` golden expectations.
var wantRe = regexp.MustCompile(`//\s*want\s+"([^"]+)"`)

// expectations reads the `// want` comments of every fixture in dir,
// returning file -> line -> expected message substring.
func expectations(t *testing.T, dir string) map[string]map[int]string {
	t.Helper()
	out := map[string]map[int]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			if out[path] == nil {
				out[path] = map[int]string{}
			}
			out[path][i+1] = m[1]
		}
	}
	return out
}

// typed fixture support: one FileSet+Checker pair shared by every typed
// fixture test, rooted at the module directory so `go list -export`
// resolves the full stdlib dependency closure once.
var (
	typedOnce    sync.Once
	typedFset    *token.FileSet
	typedChecker *Checker
)

func fixtureChecker() (*token.FileSet, *Checker) {
	typedOnce.Do(func() {
		typedFset = token.NewFileSet()
		typedChecker = NewChecker(typedFset, filepath.Join("..", ".."))
	})
	return typedFset, typedChecker
}

// parsePassTyped parses every .go file in dir into one Pass and
// type-checks it under a synthetic import path; fixtures for typed
// analyzers must type-check.
func parsePassTyped(t *testing.T, dir, pkgPath string) *Pass {
	t.Helper()
	fset, checker := fixtureChecker()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixtures in %s", dir)
	}
	pass := NewPass(fset, pkgPath, files)
	importPath := "dynaminer/fixture/" + filepath.ToSlash(dir)
	info, pkg, err := checker.Check(importPath, files)
	if err != nil {
		t.Fatalf("type-check fixtures in %s: %v", dir, err)
	}
	pass.Info, pass.Pkg = info, pkg
	return pass
}

// parseSrcTyped parses one in-memory file into a typed Pass.
func parseSrcTyped(t *testing.T, pkgPath, name, src string) *Pass {
	t.Helper()
	fset, checker := fixtureChecker()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	pass := NewPass(fset, pkgPath, []*ast.File{f})
	info, pkg, err := checker.Check("dynaminer/fixture/src/"+name, []*ast.File{f})
	if err != nil {
		t.Fatalf("type-check %s: %v", name, err)
	}
	pass.Info, pass.Pkg = info, pkg
	return pass
}

// runFixture analyzes testdata/<analyzer> and checks the findings
// against the `// want` golden comments: one finding per want line with
// a matching message, zero findings anywhere else (no false positives).
func runFixture(t *testing.T, a Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", a.Name())
	checkFixture(t, a, parsePass(t, dir, pkgPath), dir)
}

// runTypedFixture is runFixture over a type-checked pass, with the
// fixture directory named explicitly (the typed lockscope fixtures live
// apart from the syntactic ones).
func runTypedFixture(t *testing.T, a Analyzer, dir, pkgPath string) {
	t.Helper()
	d := filepath.Join("testdata", dir)
	checkFixture(t, a, parsePassTyped(t, d, pkgPath), d)
}

// checkFixture verifies the findings of one analyzer over one fixture
// pass against the `// want` golden comments.
func checkFixture(t *testing.T, a Analyzer, pass *Pass, dir string) {
	t.Helper()
	findings := Run(pass, []Analyzer{a})
	want := expectations(t, dir)

	seen := map[string]map[int]bool{}
	for _, f := range findings {
		if seen[f.Pos.Filename] == nil {
			seen[f.Pos.Filename] = map[int]bool{}
		}
		if seen[f.Pos.Filename][f.Pos.Line] {
			t.Errorf("duplicate finding at %s:%d", f.Pos.Filename, f.Pos.Line)
			continue
		}
		seen[f.Pos.Filename][f.Pos.Line] = true
		substr, ok := want[f.Pos.Filename][f.Pos.Line]
		if !ok {
			t.Errorf("unexpected finding (false positive): %s", f)
			continue
		}
		if !strings.Contains(f.Message, substr) {
			t.Errorf("finding at %s:%d: message %q does not contain %q", f.Pos.Filename, f.Pos.Line, f.Message, substr)
		}
	}
	var missed []string
	for file, lines := range want {
		for line := range lines {
			if !seen[file][line] {
				missed = append(missed, fmt.Sprintf("%s:%d", file, line))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Errorf("expected finding not reported (missed bug): %s", m)
	}
}

func TestHostfoldFixtures(t *testing.T)  { runFixture(t, Hostfold{}, "internal/analysis/testdata") }
func TestZerotimeFixtures(t *testing.T)  { runFixture(t, Zerotime{}, "internal/analysis/testdata") }
func TestLockscopeFixtures(t *testing.T) { runFixture(t, Lockscope{}, "internal/analysis/testdata") }
func TestScratchsafeFixtures(t *testing.T) {
	runFixture(t, Scratchsafe{}, "internal/analysis/testdata")
}

// Floatsafe only runs over feature-extraction packages, so its fixture
// is analyzed under that package path; a second test asserts the scoping
// itself.
func TestFloatsafeFixtures(t *testing.T) { runFixture(t, Floatsafe{}, "internal/features") }

// Goguard only runs over the serving packages, so its fixture is analyzed
// under one of those package paths; a second test asserts the scoping
// (internal/graph launches crash-loudly goroutines legitimately).
func TestGoguardFixtures(t *testing.T) { runFixture(t, Goguard{}, "internal/detector") }

// Metricname is unscoped, so its fixture runs under the testdata path.
func TestMetricnameFixtures(t *testing.T) {
	runFixture(t, Metricname{}, "internal/analysis/testdata")
}

func TestGoguardScopedToServingPackages(t *testing.T) {
	pass := parsePass(t, filepath.Join("testdata", "goguard"), "internal/graph")
	if findings := Run(pass, []Analyzer{Goguard{}}); len(findings) != 0 {
		t.Fatalf("goguard fired outside the serving packages: %v", findings)
	}
}

func TestFloatsafeScopedToFeatures(t *testing.T) {
	pass := parsePass(t, filepath.Join("testdata", "floatsafe"), "internal/analysis/testdata")
	if findings := Run(pass, []Analyzer{Floatsafe{}}); len(findings) != 0 {
		t.Fatalf("floatsafe fired outside internal/features: %v", findings)
	}
}

// parseSrc parses one in-memory file into a Pass.
func parseSrc(t *testing.T, pkgPath, name, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return NewPass(fset, pkgPath, []*ast.File{f})
}

// TestHostfoldFlagsPrePR1Bug runs hostfold against a re-creation of the
// exact pre-PR-1 detector code: the session clusterer compared and
// map-indexed the raw Host header, so a mixed-case "Landing.SHADY"
// opened a second cluster and the redirect chain escaped linkage. The
// analyzer must flag both uses — the acceptance demonstration that the
// bug class is now unwriteable.
func TestHostfoldFlagsPrePR1Bug(t *testing.T) {
	const prePR1 = `package detector

func (e *Engine) clusterFor(tx *Transaction) *cluster {
	for _, c := range e.clusters {
		if _, ok := c.hosts[tx.Host]; ok {
			return c
		}
	}
	return nil
}

func (e *Engine) trusted(tx *Transaction, vendor string) bool {
	return tx.Host == vendor
}
`
	pass := parseSrc(t, "internal/detector", "pre_pr1.go", prePR1)
	findings := Run(pass, []Analyzer{Hostfold{}})
	if len(findings) != 2 {
		t.Fatalf("hostfold findings = %d, want 2 (map index + comparison): %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "hostfold" || !strings.Contains(f.Message, "case-insensitive") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestZerotimeFlagsPrePR1Bug re-creates the PR-1 zero-timestamp alert:
// classify stamped Alert.Time from RespTime with no fallback, and the
// CLI formatted it unguarded.
func TestZerotimeFlagsPrePR1Bug(t *testing.T) {
	const prePR1 = `package main

import "time"

func printAlert(a Alert) string {
	return a.Time.Format(time.RFC3339)
}
`
	pass := parseSrc(t, "cmd/dynaminer", "pre_pr1.go", prePR1)
	findings := Run(pass, []Analyzer{Zerotime{}})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "IsZero") {
		t.Fatalf("zerotime findings = %v, want the unguarded Format flagged", findings)
	}
}

// TestIgnoreDirective checks both placements of dynalint:ignore.
func TestIgnoreDirective(t *testing.T) {
	const src = `package p

type r struct{ Host string }

func a(x r, y string) bool {
	//dynalint:ignore hostfold above-line form
	return x.Host == y
}

func b(x r, y string) bool {
	return x.Host == y //dynalint:ignore hostfold trailing form
}

func c(x r, y string) bool {
	return x.Host == y // no directive: still flagged
}
`
	pass := parseSrc(t, "p", "ignored.go", src)
	findings := Run(pass, []Analyzer{Hostfold{}})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the undirected comparison", findings)
	}
}

// TestAllAnalyzersRegistered pins the suite composition.
func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no doc", a.Name())
		}
		names[a.Name()] = true
	}
	for _, want := range []string{
		"hostfold", "zerotime", "lockscope", "floatsafe", "scratchsafe",
		"goguard", "metricname", "maporder", "hotalloc", "panicmsg",
	} {
		if !names[want] {
			t.Errorf("analyzer %s missing from All()", want)
		}
	}
	if len(names) != 10 {
		t.Errorf("suite has %d analyzers, want 10: %v", len(names), names)
	}
}

// --- dynalint v2: typed analyzers ---

func TestMaporderFixtures(t *testing.T) {
	runTypedFixture(t, Maporder{}, "maporder", "internal/analysis/testdata")
}

func TestHotallocFixtures(t *testing.T) {
	runTypedFixture(t, Hotalloc{}, "hotalloc", "internal/analysis/testdata")
}

// Panicmsg only runs over internal/ml and internal/detector, so its
// fixture is analyzed under internal/ml.
func TestPanicmsgFixtures(t *testing.T) {
	runTypedFixture(t, Panicmsg{}, "panicmsg", "internal/ml")
}

func TestLockscopeTypedFixtures(t *testing.T) {
	runTypedFixture(t, Lockscope{}, "lockscope_typed", "internal/analysis/testdata")
}

// TestPanicmsgScoped runs the bad panicmsg fixture under a package path
// outside ml/detector: the quarantine ladder only attributes panics
// crossing those boundaries, so nothing may be flagged.
func TestPanicmsgScoped(t *testing.T) {
	pass := parsePassTyped(t, filepath.Join("testdata", "panicmsg"), "internal/wcg")
	if findings := Run(pass, []Analyzer{Panicmsg{}}); len(findings) != 0 {
		t.Fatalf("panicmsg fired outside internal/ml and internal/detector: %v", findings)
	}
}

// TestMaporderSyntacticFallback: without type information maporder still
// catches ranges over locally-provable maps — the degraded mode the
// driver falls back to when a package fails type checking.
func TestMaporderSyntacticFallback(t *testing.T) {
	const src = `package p

func collect() []string {
	m := make(map[string]string)
	m["a"] = "b"
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	pass := parseSrc(t, "p", "fallback.go", src)
	findings := Run(pass, []Analyzer{Maporder{}})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "append inside map iteration") {
		t.Fatalf("syntactic maporder findings = %v, want the unsorted append flagged", findings)
	}
}

// TestIgnoreDirectiveMultiLineStatement is the regression test for the
// directive edge case: an ignore on the line above a statement that
// spans several lines must suppress findings reported on the
// statement's later lines (here the append three lines below the
// directive). Before the extendIgnores fix only the statement's first
// line was covered and this test failed.
func TestIgnoreDirectiveMultiLineStatement(t *testing.T) {
	const src = `package p

func collect() []string {
	m := make(map[string]string)
	m["a"] = "b"
	var out []string
	//dynalint:ignore maporder deliberate order-free collection
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	pass := parseSrc(t, "p", "multiline.go", src)
	if findings := Run(pass, []Analyzer{Maporder{}}); len(findings) != 0 {
		t.Fatalf("directive above a multi-line statement failed to suppress: %v", findings)
	}
}

// TestMaporderFlagsPreV2SummarizeBug re-creates the pre-v2 cmd/dynaminer
// payload summary: an inner map iteration appending the rendered parts.
// The append order happened to be pinned by the equality guard, but the
// shape is exactly the nondeterministic-collection bug class, and the
// rewrite (index the map by rendered name, then walk sorted names) is
// both deterministic by construction and no longer quadratic.
func TestMaporderFlagsPreV2SummarizeBug(t *testing.T) {
	const preV2 = `package main

import "fmt"

func payloadSummary(counts map[string]int, classes []string) []string {
	var parts []string
	for _, name := range classes {
		for c, n := range counts {
			if c == name {
				parts = append(parts, fmt.Sprintf("%s=%d", name, n))
			}
		}
	}
	return parts
}
`
	pass := parseSrcTyped(t, "cmd/dynaminer", "pre_v2_summarize.go", preV2)
	findings := Run(pass, []Analyzer{Maporder{}})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "append inside map iteration") {
		t.Fatalf("maporder findings = %v, want the inner-loop append flagged", findings)
	}
}

// TestMaporderFlagsPreV2FeaturereportBug re-creates the pre-v2
// examples/featurereport output loop: ranging over a two-entry map
// literal to write files and print, so the report lines swapped order
// from run to run.
func TestMaporderFlagsPreV2FeaturereportBug(t *testing.T) {
	const preV2 = `package main

import "fmt"

func report(a, b int) {
	for name, v := range map[string]int{"infection.dot": a, "benign.dot": b} {
		fmt.Printf("wrote %s (%d)\n", name, v)
	}
}
`
	pass := parseSrc(t, "examples/featurereport", "pre_v2_report.go", preV2)
	findings := Run(pass, []Analyzer{Maporder{}})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "Printf inside map iteration") {
		t.Fatalf("maporder findings = %v, want the Printf flagged", findings)
	}
}

// TestLockscopeSyntacticFallbackStillRuns pins the degraded path: on an
// untyped pass the pre-typed matcher still reports the plain unlocked
// access (the lockscope fixture suite runs untyped for exactly this
// reason).
func TestLockscopeSyntacticFallbackStillRuns(t *testing.T) {
	const src = `package p

import "sync"

type box struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

func bump(b *box) {
	b.n++
}
`
	pass := parseSrc(t, "p", "fallback_lock.go", src)
	findings := Run(pass, []Analyzer{Lockscope{}})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "never locks") {
		t.Fatalf("syntactic lockscope findings = %v, want the unlocked access flagged", findings)
	}
}

// TestHotallocQuietWithoutAnnotation: hotalloc binds only to annotated
// functions, so an allocation-heavy unannotated package yields nothing.
func TestHotallocQuietWithoutAnnotation(t *testing.T) {
	const src = `package p

func alloc(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
`
	pass := parseSrc(t, "p", "quiet.go", src)
	if findings := Run(pass, []Analyzer{Hotalloc{}}); len(findings) != 0 {
		t.Fatalf("hotalloc fired without a hotpath annotation: %v", findings)
	}
}
