package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// parsePass parses every .go file in dir into one Pass.
func parsePass(t *testing.T, dir, pkgPath string) *Pass {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixtures in %s", dir)
	}
	return NewPass(fset, pkgPath, files)
}

// wantRe matches `// want "substring"` golden expectations.
var wantRe = regexp.MustCompile(`//\s*want\s+"([^"]+)"`)

// expectations reads the `// want` comments of every fixture in dir,
// returning file -> line -> expected message substring.
func expectations(t *testing.T, dir string) map[string]map[int]string {
	t.Helper()
	out := map[string]map[int]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			if out[path] == nil {
				out[path] = map[int]string{}
			}
			out[path][i+1] = m[1]
		}
	}
	return out
}

// runFixture analyzes testdata/<analyzer> and checks the findings
// against the `// want` golden comments: one finding per want line with
// a matching message, zero findings anywhere else (no false positives).
func runFixture(t *testing.T, a Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", a.Name())
	pass := parsePass(t, dir, pkgPath)
	findings := Run(pass, []Analyzer{a})
	want := expectations(t, dir)

	seen := map[string]map[int]bool{}
	for _, f := range findings {
		if seen[f.Pos.Filename] == nil {
			seen[f.Pos.Filename] = map[int]bool{}
		}
		if seen[f.Pos.Filename][f.Pos.Line] {
			t.Errorf("duplicate finding at %s:%d", f.Pos.Filename, f.Pos.Line)
			continue
		}
		seen[f.Pos.Filename][f.Pos.Line] = true
		substr, ok := want[f.Pos.Filename][f.Pos.Line]
		if !ok {
			t.Errorf("unexpected finding (false positive): %s", f)
			continue
		}
		if !strings.Contains(f.Message, substr) {
			t.Errorf("finding at %s:%d: message %q does not contain %q", f.Pos.Filename, f.Pos.Line, f.Message, substr)
		}
	}
	var missed []string
	for file, lines := range want {
		for line := range lines {
			if !seen[file][line] {
				missed = append(missed, fmt.Sprintf("%s:%d", file, line))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Errorf("expected finding not reported (missed bug): %s", m)
	}
}

func TestHostfoldFixtures(t *testing.T)  { runFixture(t, Hostfold{}, "internal/analysis/testdata") }
func TestZerotimeFixtures(t *testing.T)  { runFixture(t, Zerotime{}, "internal/analysis/testdata") }
func TestLockscopeFixtures(t *testing.T) { runFixture(t, Lockscope{}, "internal/analysis/testdata") }
func TestScratchsafeFixtures(t *testing.T) {
	runFixture(t, Scratchsafe{}, "internal/analysis/testdata")
}

// Floatsafe only runs over feature-extraction packages, so its fixture
// is analyzed under that package path; a second test asserts the scoping
// itself.
func TestFloatsafeFixtures(t *testing.T) { runFixture(t, Floatsafe{}, "internal/features") }

// Goguard only runs over the serving packages, so its fixture is analyzed
// under one of those package paths; a second test asserts the scoping
// (internal/graph launches crash-loudly goroutines legitimately).
func TestGoguardFixtures(t *testing.T) { runFixture(t, Goguard{}, "internal/detector") }

// Metricname is unscoped, so its fixture runs under the testdata path.
func TestMetricnameFixtures(t *testing.T) {
	runFixture(t, Metricname{}, "internal/analysis/testdata")
}

func TestGoguardScopedToServingPackages(t *testing.T) {
	pass := parsePass(t, filepath.Join("testdata", "goguard"), "internal/graph")
	if findings := Run(pass, []Analyzer{Goguard{}}); len(findings) != 0 {
		t.Fatalf("goguard fired outside the serving packages: %v", findings)
	}
}

func TestFloatsafeScopedToFeatures(t *testing.T) {
	pass := parsePass(t, filepath.Join("testdata", "floatsafe"), "internal/analysis/testdata")
	if findings := Run(pass, []Analyzer{Floatsafe{}}); len(findings) != 0 {
		t.Fatalf("floatsafe fired outside internal/features: %v", findings)
	}
}

// parseSrc parses one in-memory file into a Pass.
func parseSrc(t *testing.T, pkgPath, name, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return NewPass(fset, pkgPath, []*ast.File{f})
}

// TestHostfoldFlagsPrePR1Bug runs hostfold against a re-creation of the
// exact pre-PR-1 detector code: the session clusterer compared and
// map-indexed the raw Host header, so a mixed-case "Landing.SHADY"
// opened a second cluster and the redirect chain escaped linkage. The
// analyzer must flag both uses — the acceptance demonstration that the
// bug class is now unwriteable.
func TestHostfoldFlagsPrePR1Bug(t *testing.T) {
	const prePR1 = `package detector

func (e *Engine) clusterFor(tx *Transaction) *cluster {
	for _, c := range e.clusters {
		if _, ok := c.hosts[tx.Host]; ok {
			return c
		}
	}
	return nil
}

func (e *Engine) trusted(tx *Transaction, vendor string) bool {
	return tx.Host == vendor
}
`
	pass := parseSrc(t, "internal/detector", "pre_pr1.go", prePR1)
	findings := Run(pass, []Analyzer{Hostfold{}})
	if len(findings) != 2 {
		t.Fatalf("hostfold findings = %d, want 2 (map index + comparison): %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "hostfold" || !strings.Contains(f.Message, "case-insensitive") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestZerotimeFlagsPrePR1Bug re-creates the PR-1 zero-timestamp alert:
// classify stamped Alert.Time from RespTime with no fallback, and the
// CLI formatted it unguarded.
func TestZerotimeFlagsPrePR1Bug(t *testing.T) {
	const prePR1 = `package main

import "time"

func printAlert(a Alert) string {
	return a.Time.Format(time.RFC3339)
}
`
	pass := parseSrc(t, "cmd/dynaminer", "pre_pr1.go", prePR1)
	findings := Run(pass, []Analyzer{Zerotime{}})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "IsZero") {
		t.Fatalf("zerotime findings = %v, want the unguarded Format flagged", findings)
	}
}

// TestIgnoreDirective checks both placements of dynalint:ignore.
func TestIgnoreDirective(t *testing.T) {
	const src = `package p

type r struct{ Host string }

func a(x r, y string) bool {
	//dynalint:ignore hostfold above-line form
	return x.Host == y
}

func b(x r, y string) bool {
	return x.Host == y //dynalint:ignore hostfold trailing form
}

func c(x r, y string) bool {
	return x.Host == y // no directive: still flagged
}
`
	pass := parseSrc(t, "p", "ignored.go", src)
	findings := Run(pass, []Analyzer{Hostfold{}})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the undirected comparison", findings)
	}
}

// TestAllAnalyzersRegistered pins the suite composition.
func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no doc", a.Name())
		}
		names[a.Name()] = true
	}
	for _, want := range []string{"hostfold", "zerotime", "lockscope", "floatsafe", "scratchsafe", "goguard", "metricname"} {
		if !names[want] {
			t.Errorf("analyzer %s missing from All()", want)
		}
	}
}
