package analysis

import (
	"go/ast"
)

// Goguard keeps the serving path panic-safe. The detector engine, the
// proxy, and the monitor recover per-transaction panics at their entry
// points, but a goroutine launched inside those packages starts a fresh
// stack: a panic there bypasses every handler-level recover and kills the
// whole process. So every go statement in the serving packages must carry
// its own recover() guard (the janitor pattern in monitor.go).
//
// The analyzer is syntactic: a go statement launching a function literal
// is checked for a recover() call anywhere in its body, nested deferred
// closures included. A go statement calling a named function cannot be
// verified without type information, so it is flagged unconditionally —
// inline a guarded closure, or suppress with
// "//dynalint:ignore goguard <reason>" when the callee is known to guard
// itself.
//
// Scope: the serving packages only (module root, internal/detector,
// internal/proxy, internal/obs — the admin HTTP server runs a serve
// goroutine). Offline analytics and test helpers may crash loudly.
type Goguard struct{}

// Name implements Analyzer.
func (Goguard) Name() string { return "goguard" }

// Doc implements Analyzer.
func (Goguard) Doc() string {
	return "goroutines in serving packages launched without a recover() guard (a panic there kills the process)"
}

// goguardPkgs are the serving packages whose goroutines must be guarded.
var goguardPkgs = map[string]bool{
	"":                  true, // module root: monitor, classifier
	"internal/detector": true,
	"internal/proxy":    true,
	"internal/obs":      true, // admin server's serve goroutine
}

// containsRecover reports whether body lexically contains a recover()
// call.
func containsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" && len(call.Args) == 0 {
				found = true
			}
		}
		return !found
	})
	return found
}

// Run implements Analyzer.
func (g Goguard) Run(pass *Pass) []Finding {
	if !goguardPkgs[pass.PkgPath] {
		return nil
	}
	var out []Finding
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				if !containsRecover(lit.Body) {
					out = append(out, pass.finding(g.Name(), gs.Pos(),
						"goroutine launched without a recover() guard; a panic on this stack kills the process"))
				}
				return true
			}
			out = append(out, pass.finding(g.Name(), gs.Pos(),
				"go statement calls a named function the analyzer cannot verify; inline a recover()-guarded closure or suppress with //dynalint:ignore goguard <reason>"))
			return true
		})
	}
	return out
}
