package analysis

import (
	"go/ast"
	"strings"
)

// Zerotime enforces the two timestamp invariants PR 1 restored:
//
//  1. time.Time fields are formatted only behind an IsZero guard. Alerts
//     once shipped with the zero time.Time when a transaction never got a
//     response; the fix falls back to ReqTime, and every *rendering* site
//     must still guard, because a zero value formats as the year 1 and
//     silently corrupts SIEM timelines.
//  2. Library packages never call time.Now() bare. The engine, proxy and
//     simulators are replay-deterministic: time is injected through a
//     `Now func() time.Time` hook (see proxy.Config.Now). Only package
//     main may read the wall clock directly.
//
// Rule 1 fires on a call X.Format(...) whose receiver chain is rooted at
// a time-like selector (field named Time, *Time, FirstSeen, LastGrowth,
// LastActive) with no `<root>.IsZero()` call in the enclosing function.
// Chained conversions (a.Time.UTC().Format(...)) are unwrapped.
type Zerotime struct{}

// Name implements Analyzer.
func (Zerotime) Name() string { return "zerotime" }

// Doc implements Analyzer.
func (Zerotime) Doc() string {
	return "time.Time fields formatted without an IsZero guard; bare time.Now() in library packages"
}

// timeLikeSel reports whether a selector reads a time-carrying field.
func timeLikeSel(sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	switch name {
	case "Time", "FirstSeen", "LastGrowth", "LastActive":
		return true
	}
	return strings.HasSuffix(name, "Time")
}

// formatRoot unwraps the receiver of a Format call through value-preserving
// conversions (UTC, Local, In, Truncate, Round, Add) down to a time-like
// selector, returning its text, or "" when the receiver is not one.
func formatRoot(recv ast.Expr) string {
	for {
		recv = unparen(recv)
		call, ok := recv.(*ast.CallExpr)
		if !ok {
			break
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		switch sel.Sel.Name {
		case "UTC", "Local", "In", "Truncate", "Round", "Add":
			recv = sel.X
		default:
			return ""
		}
	}
	if sel, ok := recv.(*ast.SelectorExpr); ok && timeLikeSel(sel) {
		return chainText(sel)
	}
	return ""
}

// guardedByIsZero reports whether fn's body contains an IsZero() call on
// the given receiver chain (flow-insensitive: any guard in the function
// sanctions the format).
func guardedByIsZero(fn ast.Node, root string) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "IsZero" {
			return true
		}
		if chainText(sel.X) == root {
			found = true
		}
		return true
	})
	return found
}

// isBareTimeNow reports whether call is exactly time.Now().
func isBareTimeNow(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "time"
}

// Run implements Analyzer.
func (z Zerotime) Run(pass *Pass) []Finding {
	var out []Finding
	library := pass.PkgName != "main"
	for _, f := range pass.Files {
		walkStack(f, func(stack []ast.Node) {
			call, ok := stack[len(stack)-1].(*ast.CallExpr)
			if !ok {
				return
			}
			if library && isBareTimeNow(call) {
				out = append(out, pass.finding(z.Name(), call.Pos(),
					"bare time.Now() in library package %q breaks replay determinism; inject a Now func() time.Time hook", pass.PkgName))
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Format" {
				return
			}
			root := formatRoot(sel.X)
			if root == "" {
				return
			}
			if fn := enclosingFunc(stack); fn != nil && guardedByIsZero(fn, root) {
				return
			}
			out = append(out, pass.finding(z.Name(), call.Pos(),
				"%s formatted without an IsZero guard; the zero time renders as year 1 — guard or fall back to a real timestamp", root))
		})
	}
	return out
}
