// Fixture: nothing in this file may be flagged — every allocation is
// cold (cap-guarded or on a panic path), amortized into reused capacity,
// pointer-shaped, or outside an annotated function.
package fixtures

//dynalint:hotpath
func capGuardedGrow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	return dst
}

//dynalint:hotpath
func capGuardedInit(dst []int, xs []int) []int {
	if rem := len(xs) - (cap(dst) - len(dst)); rem > 0 {
		grown := make([]int, len(dst), len(dst)+len(xs))
		copy(grown, dst)
		dst = grown
	}
	for _, x := range xs {
		dst = append(dst, x) //dynalint:ignore hotalloc capacity ensured by the grow block above
	}
	return dst
}

//dynalint:hotpath
func panicPathIsCold(x []float64, nf int) {
	if len(x) != nf {
		msg := make([]byte, 0, 64) // the diagnostic branch never runs hot
		panic(string(append(msg, "fixtures: bad dimension"...)))
	}
}

//dynalint:hotpath
func reuseAppend(q []int, adj [][]int, src int) []int {
	q = q[:0]
	q = append(q, src)
	for head := 0; head < len(q); head++ {
		for _, v := range adj[q[head]] {
			q = append(q, v)
		}
	}
	return q
}

//dynalint:hotpath
func arenaCarve(und [][]int, arena []int, deg []int, pairs []uint64) {
	off := 0
	for u := range und {
		und[u] = arena[off : off : off+deg[u]]
		off += deg[u]
	}
	for _, p := range pairs {
		a, b := int(p>>32), int(p&0xffffffff)
		und[a] = append(und[a], b)
		und[b] = append(und[b], a)
	}
}

//dynalint:hotpath
func pointerShapedArg(p *int) {
	sink2(p) // a pointer fits the interface data word without allocating
}

func sink2(v any) { _ = v }

// unannotated functions allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}
