// Fixture: every line marked `want` must be flagged by hotalloc.
package fixtures

import "fmt"

//dynalint:hotpath
func makeEveryCall(n int) []float64 {
	buf := make([]float64, n) // want "make in a hotpath function"
	return buf
}

//dynalint:hotpath
func appendGrows(dst []int, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x) // want "append in a hotpath function"
	}
	return dst
}

//dynalint:hotpath
func concat(a, b string) string {
	return a + b // want "string concatenation"
}

//dynalint:hotpath
func convert(b []byte) string {
	return string(b) // want "string conversion"
}

//dynalint:hotpath
func boxed(x int) {
	sink(x) // want "boxed into an interface parameter"
}

func sink(v any) { _ = v }

//dynalint:hotpath
func closure(xs []int) func() int {
	f := func() int { return len(xs) } // want "closure in a hotpath function"
	return f
}

//dynalint:hotpath
func sprintfBoxes(n int) string {
	return fmt.Sprintf("n=%d", n) // want "boxed into an interface parameter"
}
