// Fixture: nothing in this file may be flagged. The pointer-alias cases
// are exactly the false positives the syntactic matcher produced —
// object resolution matches the alias and the original up.
package fixtures

import "sync"

type aliasBox struct {
	mu sync.Mutex
	// guarded by mu
	hits int
}

// pointerAlias locks through the original and touches the guarded field
// through a pointer alias.
func pointerAlias(b *aliasBox) {
	alias := b
	b.mu.Lock()
	defer b.mu.Unlock()
	alias.hits++
}

// aliasLock locks through the alias and touches through the original.
func aliasLock(b *aliasBox) {
	alias := b
	alias.mu.Lock()
	defer alias.mu.Unlock()
	b.hits++
}

// addrAlias takes the address explicitly.
func addrAlias(b *aliasBox) int {
	alias := &*b
	alias.mu.Lock()
	defer alias.mu.Unlock()
	return b.hits
}
