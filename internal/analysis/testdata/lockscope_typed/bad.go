// Fixture: every line marked `want` must be flagged by the typed
// lockscope rules. This fixture only runs on a typed Pass — the cases
// here need go/types object identity to resolve.
package fixtures

import "sync"

type valueBox struct {
	mu sync.Mutex
	// guarded by mu
	n int
}

// Bump locks through a value receiver: the receiver is a copy, so the
// lock protects nothing the caller can see.
func (v valueBox) Bump() {
	v.mu.Lock() // want "value receiver"
	v.n++
	v.mu.Unlock()
}

type holder struct {
	mu sync.Mutex
	// guarded by mu
	count int
}

// copyDetached locks the original but mutates a detached value copy —
// the typed analyzer refuses to treat a struct copy as an alias.
func copyDetached(h *holder) {
	c := *h
	h.mu.Lock()
	defer h.mu.Unlock()
	c.count++ // want "never locks"
}
