// Fixture: compliant idioms that must produce zero floatsafe findings.
package fixtures

type stats struct {
	Sum   float64
	Reqs  int
	Gap   float64
	Hosts []string
}

// enclosingGuard is the features.Extract idiom: the division sits inside
// an if that names the denominator.
func enclosingGuard(s stats) []float64 {
	v := make([]float64, 2)
	if s.Reqs > 0 {
		v[0] = s.Sum / float64(s.Reqs)
	}
	return v
}

// earlyReturnGuard: an early-exit if mentioning the denominator anywhere
// in the function sanctions later divisions.
func earlyReturnGuard(s stats) []float64 {
	v := make([]float64, 1)
	if s.Gap == 0 {
		return v
	}
	v[0] = s.Sum / s.Gap
	return v
}

// lenGuard: guarding on the collection the denominator derives from.
func lenGuard(s stats) []float64 {
	v := make([]float64, 1)
	if n := len(s.Hosts); n > 0 {
		v[0] = s.Sum / float64(n)
	}
	return v
}

// constDenominator: non-zero constants cannot divide by zero.
func constDenominator(s stats) []float64 {
	v := make([]float64, 2)
	v[0] = s.Sum / 2
	v[1] = s.Gap / float64(24)
	return v
}

// scalarFlow: divisions that never reach a vector slot are out of scope.
func scalarFlow(s stats) float64 {
	return s.Sum / s.Gap
}
