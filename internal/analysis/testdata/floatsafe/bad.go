// Fixture: every line marked `want` must be flagged by floatsafe. The
// test runner analyzes this directory under the package path
// "internal/features", the scope floatsafe applies to.
package fixtures

type summary struct {
	Total float64
	Count int
	Span  float64
}

// unguardedSlot recreates the bug class: a zero Count makes f(k) NaN or
// Inf and poisons every ERF tree split downstream.
func unguardedSlot(s summary) []float64 {
	v := make([]float64, 3)
	v[0] = s.Total / float64(s.Count) // want "zero-denominator"
	return v
}

func unguardedAppend(s summary, out []float64) []float64 {
	return append(out, s.Span/s.Total) // want "zero-denominator"
}

func guardsWrongVariable(s summary) []float64 {
	v := make([]float64, 1)
	if s.Count > 0 {
		v[0] = s.Total / s.Span // want "zero-denominator"
	}
	return v
}
