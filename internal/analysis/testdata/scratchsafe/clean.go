// Fixture: none of these may be flagged — they are the intended ways to
// use a scratch workspace.
package fixtures

import "dynaminer/internal/graph"

type holder struct {
	buf []float64
	s   *graph.Scratch
}

// passesThrough hands the scratch to a measurement and returns the
// caller-owned destination — the Into-method pattern.
func passesThrough(g *graph.Digraph, dst []float64, s *graph.Scratch) []float64 {
	return g.DegreeCentralityInto(dst, s)
}

// copiesOut duplicates scratch contents into caller storage; the arena
// itself does not escape.
func copiesOut(s *graph.Scratch, dst []int) {
	copy(dst, s.dist)
}

// localAlias may borrow scratch storage for the duration of the call.
func localAlias(s *graph.Scratch) int {
	d := s.dist
	return len(d)
}

// keepsScratchItself retains the workspace pointer — ownership transfer,
// the feature-cache constructor pattern.
func keepsScratchItself(h *holder, s *graph.Scratch) {
	h.s = s
}

// freshCopyInField stores a copy, not the arena.
func freshCopyInField(h *holder, s *graph.Scratch) {
	h.buf = append([]float64(nil), h.buf...)
}

// noScratchParam is out of scope regardless of what it stores.
func noScratchParam(h *holder, dist []float64) {
	h.buf = dist
}
