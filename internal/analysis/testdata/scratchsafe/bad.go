// Fixture: every line marked `want` must be flagged by scratchsafe. The
// analyzer is syntactic, so the fixture freely selects into unexported
// Scratch fields — it is parsed, never compiled.
package fixtures

import "dynaminer/internal/graph"

type sticky struct {
	dist []int
	rows [][]int
	all  [][]int
}

// returnsScratchSlice hands the caller storage the next measurement
// overwrites in place.
func returnsScratchSlice(s *graph.Scratch) []int {
	return s.dist // want "returned scratch-rooted slice"
}

// returnsScratchRow leaks one row of an arena-backed adjacency list.
func returnsScratchRow(u int, s *graph.Scratch) []int {
	return s.und[u] // want "returned scratch-rooted slice"
}

// returnsSubslice leaks via a slice expression of scratch storage.
func returnsSubslice(n int, s *graph.Scratch) []int {
	return s.dist[:n] // want "returned scratch-rooted slice"
}

// storesInField retains scratch storage in a long-lived struct.
func storesInField(c *sticky, s *graph.Scratch) {
	c.dist = s.dist // want "stored in a struct field"
}

// appendsIntoField leaks through append: the appended header still
// points at the workspace arena.
func appendsIntoField(c *sticky, s *graph.Scratch) {
	c.rows = append(c.rows, s.dist) // want "appended into a struct field"
}

// literalCarriesSlice smuggles the slice out inside a composite literal.
func literalCarriesSlice(s *graph.Scratch) *sticky {
	return &sticky{dist: s.dist} // want "carried in a composite literal"
}

// closureLeak escapes through a closure that outlives the call.
func closureLeak(s *graph.Scratch) func() []int {
	return func() []int {
		return s.dist // want "returned scratch-rooted slice"
	}
}
