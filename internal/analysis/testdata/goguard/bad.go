// Fixture: every line marked `want` must be flagged by goguard. The
// fixture is parsed, never compiled.
package fixtures

import "time"

type engine struct{ n int }

func (e *engine) sweep() {}

// unguardedLiteral launches a bare goroutine: a panic on that stack
// kills the process.
func unguardedLiteral(e *engine) {
	go func() { // want "without a recover"
		e.sweep()
	}()
}

// unguardedLoop launches workers without guards.
func unguardedLoop(e *engine) {
	for i := 0; i < 4; i++ {
		go func(i int) { // want "without a recover"
			e.n += i
		}(i)
	}
}

// namedFunction cannot be verified syntactically.
func namedFunction(e *engine) {
	go e.sweep() // want "named function"
}

// namedPackageFunc is equally unverifiable.
func namedPackageFunc(done chan struct{}) {
	go close(done) // want "named function"
}

// deferWithoutRecover has a defer, but no recover inside it: the guard
// must actually call recover.
func deferWithoutRecover(e *engine) {
	go func() { // want "without a recover"
		defer e.sweep()
		time.Sleep(time.Millisecond)
	}()
}

// innerGoroutineUnguarded nests an unguarded launch inside a guarded one:
// the inner stack is fresh and the outer recover does not cover it.
func innerGoroutineUnguarded(e *engine) {
	go func() {
		defer func() { recover() }()
		go func() { // want "without a recover"
			e.sweep()
		}()
	}()
}
