// Fixture: none of these may be flagged — they are the sanctioned ways
// to launch goroutines in the serving packages.
package fixtures

import "time"

type monitor struct{ stop chan struct{} }

func (m *monitor) evict() {}

// guardedJanitor is the canonical pattern: the goroutine's first deferred
// function recovers.
func guardedJanitor(m *monitor) {
	go func() {
		defer func() {
			recover()
		}()
		tick := time.NewTicker(time.Minute)
		defer tick.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-tick.C:
				m.evict()
			}
		}
	}()
}

// guardedWithHandler inspects the recovered value.
func guardedWithHandler(m *monitor, errs chan<- any) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				errs <- r
			}
		}()
		m.evict()
	}()
}

// guardedPerIteration recovers inside a helper closure the goroutine
// calls each round; the guard is still lexically inside the body.
func guardedPerIteration(m *monitor) {
	go func() {
		sweep := func() {
			defer func() { recover() }()
			m.evict()
		}
		for i := 0; i < 3; i++ {
			sweep()
		}
	}()
}

// suppressedNamed documents why the named callee is safe.
func suppressedNamed(m *monitor) {
	//dynalint:ignore goguard evict guards itself and takes no locks
	go m.evict()
}

// notAGoroutine is a plain call; goguard only looks at go statements.
func notAGoroutine(m *monitor) {
	m.evict()
}
