// Fixture: every line marked `want` must be flagged by hostfold.
package fixtures

import "strings"

type tx struct {
	Host string
	Hdr  map[string]string
}

func (t *tx) Referer() string { return t.Hdr["Referer"] }

type download struct{ Server string }

// prePR1ClusterFor recreates the pre-PR-1 detector bug: the session
// clusterer compared and indexed the raw Host header, so a mixed-case
// "Landing.SHADY" opened a second cluster and the redirect chain escaped
// linkage.
func prePR1ClusterFor(t *tx, hosts map[string]bool) bool {
	if hosts[t.Host] { // want "case-insensitive"
		return true
	}
	if t.Host == "landing.shady" { // want "case-insensitive"
		return true
	}
	return false
}

func compareBoth(a, b *tx) bool {
	return a.Host == b.Host // want "case-insensitive"
}

func switchOnHost(t *tx) int {
	switch t.Host { // want "switch tag"
	case "ads.shady":
		return 1
	}
	return 0
}

func refererIdentity(t *tx, d download) bool {
	return t.Referer() != d.Server // want "case-insensitive"
}

func ignored(t *tx) bool {
	//dynalint:ignore hostfold fixture demonstrates the escape hatch
	return t.Host == "suppressed.example"
}

var _ = strings.ToLower
