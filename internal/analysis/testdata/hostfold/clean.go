// Fixture: compliant idioms that must produce zero hostfold findings.
package fixtures

import "strings"

type ctx struct {
	Host string
	refs map[string]int
}

func (c *ctx) RefererURL() string { return "" }

// folded comparisons are calls, not bare selectors.
func foldedOK(c *ctx, other string) bool {
	if strings.ToLower(c.Host) == other {
		return true
	}
	return strings.EqualFold(c.Host, other)
}

// emptiness checks are presence tests, not identity tests.
func emptinessOK(c *ctx) bool {
	return c.Host == "" || "" != c.Host
}

// indexing with an already-folded key.
func foldedIndexOK(c *ctx) int {
	return c.refs[strings.ToLower(c.Host)]
}

// assignment and formatting of raw hosts is fine; only comparisons,
// indexing and switching are identity-sensitive.
func readOK(c *ctx) string {
	h := c.Host
	return h
}

// locals already canonicalized upstream may be compared freely.
func localOK(c *ctx, folded string) bool {
	host := strings.ToLower(c.Host)
	return host == folded
}
