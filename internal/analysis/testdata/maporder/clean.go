// Fixture: nothing in this file may be flagged — every site either has a
// deterministic order or feeds an order-insensitive sink.
package fixtures

import (
	"fmt"
	"sort"
)

// collectThenSort is the sanctioned idiom: gather, then sort.
func collectThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// intAccum accumulates integers; integer addition is associative, so map
// order cannot change the sum.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keyedWrites give every key its own slot: a key-indexed slice write and
// a keyed map-element accumulator are order-insensitive slot-wise.
func keyedWrites(m map[int]float64, dst []float64, acc map[int]float64) {
	for k, v := range m {
		dst[k] = v
		acc[k] += v
	}
}

// loopLocalAppend rebuilds each value list into a slice declared inside
// the loop body; map order cannot influence any single rebuilt list.
func loopLocalAppend(m map[string][]int) map[string][]int {
	for k, list := range m {
		kept := list[:0]
		for _, v := range list {
			if v >= 0 {
				kept = append(kept, v)
			}
		}
		m[k] = kept
	}
	return m
}

// sortedIteration serializes over sorted keys.
func sortedIteration(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// sliceRange is not a map range at all.
func sliceRange(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum
}
