// Fixture: every line marked `want` must be flagged by maporder.
package fixtures

import "fmt"

// appendNoSort collects map keys with no deterministic order anywhere.
func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append inside map iteration"
	}
	return out
}

// floatAccum sums float values in map order; float addition is not
// associative, so the accumulated bits depend on iteration order.
func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation"
	}
	return total
}

// selfAssignAccum is the x = x + v spelling of the accumulator.
func selfAssignAccum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want "floating-point accumulation"
	}
	return sum
}

// counterSlot writes vector slots indexed by a loop counter: the slot an
// element lands in depends on iteration order.
func counterSlot(m map[string]float64, dst []float64) {
	i := 0
	for _, v := range m {
		dst[i] = v // want "counter-indexed slot write"
		i++
	}
}

// serialize emits bytes in map order.
func serialize(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "Printf inside map iteration"
	}
}

// sortRemoved re-creates the removed-sort regression: this collect loop
// was once followed by sort.Strings(out); with the sort deleted the
// append must be flagged again.
func sortRemoved(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want "append inside map iteration"
	}
	return out
}
