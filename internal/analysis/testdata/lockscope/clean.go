// Fixture: compliant idioms that must produce zero lockscope findings.
package fixtures

import "sync"

type gauge struct {
	mu sync.RWMutex
	// guarded by mu
	value int
	label string // unguarded fields are free
}

type shard struct {
	mu  sync.Mutex
	box *gauge // guarded by mu
}

// lockedWrite is the canonical pattern.
func lockedWrite(g *gauge, v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.value = v
}

// rlockedRead: RLock sanctions reads.
func rlockedRead(g *gauge) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.value
}

// nestedChain: locking the same base chain sanctions deeper selectors,
// mirroring the sharded engine's sh.mu / sh.eng pattern.
func nestedChain(shards []*shard) int {
	total := 0
	for _, sh := range shards {
		sh.mu.Lock()
		total += sh.box.valueLocked()
		sh.mu.Unlock()
	}
	return total
}

// valueLocked: the Locked suffix marks caller-holds-lock helpers.
func (g *gauge) valueLocked() int { return g.value }

// unguardedField: untouched-by-annotation fields need no lock.
func unguardedField(g *gauge) string { return g.label }

// constructors build instances via composite literals, which are not
// selector accesses and stay exempt.
func newGauge() *gauge { return &gauge{label: "fresh"} }
