// Fixture: every line marked `want` must be flagged by lockscope.
package fixtures

import "sync"

type counterBox struct {
	mu sync.Mutex
	// guarded by mu
	hits int
	name string // not guarded
}

// unlockedWrite touches the guarded field with no lock at all.
func unlockedWrite(b *counterBox) {
	b.hits++ // want "never locks"
}

// wrongMutex locks some other lock, not the annotated one.
type twoLocks struct {
	mu    sync.Mutex
	other sync.Mutex
	n     int // guarded by mu
}

func wrongMutex(t *twoLocks) int {
	t.other.Lock()
	defer t.other.Unlock()
	return t.n // want "never locks"
}

// wrongReceiver locks the mutex of a different instance.
func wrongReceiver(a, b *counterBox) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.hits = 0 // want "never locks"
}

// unguardedRead: reads need the lock too.
func unguardedRead(b *counterBox) int {
	return b.hits // want "never locks"
}
