// Fixture: compliant idioms that must produce zero metricname findings.
package fixtures

// helperOK: dynamic names are out of syntactic reach; the registry's
// runtime validator covers them.
func helperOK(reg registry, name string) int {
	return reg.Counter(name, "forwarded name")
}

func conventionalOK(reg registry) {
	reg.Counter("dynaminer_detector_transactions_total", "transactions ingested")
	reg.Gauge("dynaminer_detector_watched_total", "watches currently open")
	reg.Histogram("dynaminer_proxy_relay_seconds", "relay latency", nil)
	reg.Histogram("dynaminer_httpstream_bytes", "", nil) //dynalint:ignore metricname demonstrating suppression
	reg.GaugeVec("dynaminer_proxy_breaker_state_total", "breaker state", "host")
}

// notARegistration: same method names with the wrong arity are not
// registration calls (e.g. a math counter taking one argument).
type tally struct{}

func (tally) Counter(n int) int { return n }

func arityOK(t tally) int { return t.Counter(3) }

// spanHelperOK: dynamic span names are out of syntactic reach; the
// runtime obs.ValidateSpanName panic covers them.
func spanHelperOK(tr tracer, name string) int {
	return tr.Stage(name)
}

func spanConventionalOK(tr tracer) {
	tr.Stage("features.incremental")
	tr.Stage("features.rebuild")
	tr.Stage("ml.score_2.batched")
}

// stageArityOK: a method named Stage with a different arity is not a
// span interning.
type phased struct{}

func (phased) Stage(a, b int) int { return a + b }

func stageArityOK(p phased) int { return p.Stage(1, 2) }
