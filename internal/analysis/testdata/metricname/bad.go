// Fixture: every line marked `want` must be flagged by metricname.
package fixtures

type registry struct{}

func (registry) Counter(name, help string) int                { return 0 }
func (registry) Gauge(name, help string) int                  { return 0 }
func (registry) Histogram(name, help string, b []float64) int { return 0 }
func (registry) GaugeVec(name, help, label string) int        { return 0 }

func badNames(reg registry) {
	reg.Counter("dynaminer_Requests_total", "mixed case")         // want "not snake_case"
	reg.Counter("dynaminer-relay-seconds", "kebab case")          // want "not snake_case"
	reg.Gauge("_dynaminer_watched_total", "leading _")            // want "not snake_case"
	reg.Gauge("dynaminer__watched_total", "empty segment")        // want "not snake_case"
	reg.Histogram("9th_percentile_seconds", "leading digit", nil) // want "not snake_case"
}

func badSuffixes(reg registry) {
	reg.Counter("dynaminer_requests", "no unit")           // want "lacks a unit suffix"
	reg.Histogram("dynaminer_relay_ms", "wrong unit", nil) // want "lacks a unit suffix"
	reg.Gauge("dynaminer_watched_count", "wrong unit")     // want "lacks a unit suffix"
}

func duplicates(reg registry) {
	reg.Counter("dynaminer_alerts_total", "first registration is fine")
	reg.Counter("dynaminer_alerts_total", "copy-paste slip") // want "already registered"
}

func badLabel(reg registry) {
	reg.GaugeVec("dynaminer_breaker_state_total", "ok name",
		"Host-Name") // want "not snake_case"
}

type tracer struct{}

func (tracer) Stage(name string) int { return 0 }

func badSpans(tr tracer) {
	tr.Stage("nodot")             // want "not lowercase dotted"
	tr.Stage("Detector.Classify") // want "not lowercase dotted"
	tr.Stage("features.")         // want "not lowercase dotted"
	tr.Stage("features..rebuild") // want "not lowercase dotted"
	tr.Stage("9th.percentile")    // want "not lowercase dotted"
	tr.Stage("proxy.round-trip")  // want "not lowercase dotted"
}

func duplicateSpans(tr tracer) {
	tr.Stage("detector.classify")
	tr.Stage("detector.classify") // want "already interned"
}
