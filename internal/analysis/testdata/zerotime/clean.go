// Fixture: compliant idioms that must produce zero zerotime findings.
package fixtures

import "time"

type record struct {
	Time     time.Time
	RespTime time.Time
	now      func() time.Time
}

// guardedFormat: an IsZero check anywhere in the function sanctions the
// format (flow-insensitive, like the analyzer).
func guardedFormat(r record) string {
	if r.Time.IsZero() {
		return "unset"
	}
	return r.Time.Format(time.RFC3339)
}

// guardedChained covers the UTC()/Truncate() conversion chain.
func guardedChained(r record) string {
	if r.RespTime.IsZero() {
		return ""
	}
	return r.RespTime.UTC().Truncate(time.Second).Format(time.RFC3339Nano)
}

// hookOK: the injectable-clock idiom — taking time.Now as a *value* for
// a hook default is fine; only bare call sites are flagged.
func hookOK(r *record) time.Time {
	if r.now == nil {
		r.now = time.Now
	}
	return r.now()
}

// paramOK: formatting a plain parameter is not a field read; helpers
// that guard internally take the time as a parameter.
func paramOK(t time.Time, layout string) string {
	if t.IsZero() {
		return "unset"
	}
	return t.Format(layout)
}

// layoutOK: Format on non-time-like receivers is ignored.
type encoder struct{}

func (encoder) Format(s string) string { return s }

func otherFormat(e encoder) string { return e.Format("x") }
