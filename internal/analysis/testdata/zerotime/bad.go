// Fixture: every line marked `want` must be flagged by zerotime.
package fixtures

import (
	"fmt"
	"time"
)

type alert struct {
	Time    time.Time
	ReqTime time.Time
}

// unguardedFormat recreates the pre-PR-1 symptom: a zero alert time
// rendered as year 1 in the SIEM feed.
func unguardedFormat(a alert) string {
	return a.Time.Format(time.RFC3339) // want "IsZero guard"
}

func unguardedChained(a alert) string {
	return a.Time.UTC().Format(time.RFC3339Nano) // want "IsZero guard"
}

func wrongGuard(a alert) string {
	if a.ReqTime.IsZero() { // guards ReqTime, formats Time
		return ""
	}
	return fmt.Sprint(a.Time.Format(time.Kitchen)) // want "IsZero guard"
}

// libraryNow is the determinism half: fixtures declare package
// "fixtures", a library, so the bare clock read is flagged.
func libraryNow() time.Time {
	return time.Now() // want "replay determinism"
}
