// Fixture: nothing in this file may be flagged — every panic carries the
// "ml: " prefix the quarantine ladder attributes on, or re-raises a
// recovered value it did not mint.
package fixtures

import (
	"errors"
	"fmt"
)

func literalPrefixed(n int) {
	if n < 0 {
		panic("ml: negative size")
	}
}

func sprintfPrefixed(nf, n int) {
	if n != nf {
		panic(fmt.Sprintf("ml: feature vector has %d features, forest was trained on %d", n, nf))
	}
}

func errPrefixed() {
	panic(errors.New("ml: model not loaded"))
}

func repanic(f func()) {
	defer func() {
		if r := recover(); r != nil {
			panic(r)
		}
	}()
	f()
}
