// Fixture: every line marked `want` must be flagged by panicmsg. The
// fixture is analyzed under package path internal/ml, so the required
// prefix is "ml: ".
package fixtures

import (
	"errors"
	"fmt"
)

func barePanic(n int) {
	if n < 0 {
		panic("negative size") // want "must start with"
	}
}

func sprintfNoPrefix(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad dimension %d", n)) // want "must start with"
	}
}

func errNoPrefix() {
	panic(errors.New("model not loaded")) // want "must start with"
}

func wrongPrefix() {
	panic("detector: wrong package prefix") // want "must start with"
}

func nonLiteral(msg string) {
	panic(msg) // want "must start with"
}
