// Package analysis is dynalint's analyzer suite: project-specific static
// checks that fossilize the invariants earlier PRs restored by hand, so
// the bug classes they fixed cannot be reintroduced silently. The suite
// is dependency-free — stdlib go/parser, go/ast, go/token and go/types
// only — because the build environment cannot fetch golang.org/x/tools.
//
// Since dynalint v2 the driver type-checks every package it can (see
// Checker) and threads the *types.Info through the Pass. Analyzers that
// need type identity (maporder, hotalloc, the typed lockscope rules)
// consult it; every analyzer still degrades to its syntactic heuristics
// when Pass.Info is nil, so a package that fails type checking is linted
// best-effort instead of crashing the run.
//
// The analyzers and the invariant each one enforces:
//
//   - hostfold:  DNS names are case-insensitive, so raw Host fields must
//     never be compared, map-indexed, or switched on without case folding
//     (the PR-1 mixed-case session-split bug).
//   - zerotime:  time.Time fields are formatted only behind an IsZero
//     guard, and library packages never call time.Now() directly — they
//     take an injectable Now hook so replays stay deterministic (the PR-1
//     zero-timestamp alert bug).
//   - lockscope: struct fields annotated "guarded by <mu>" are only
//     touched by functions that lock that mutex on the same receiver (the
//     engine/proxy lock-discipline rule); with type information the
//     receiver and mutex are matched by object identity, one level of
//     pointer aliasing is resolved, and locking a mutex through a value
//     receiver (a copy) is reported.
//   - floatsafe: divisions flowing into feature-vector slots carry a
//     zero-denominator guard, keeping the 37-feature vector finite as the
//     ERF requires.
//   - scratchsafe: functions taking a *graph.Scratch never retain the
//     workspace's slices via returns, struct fields, or composite
//     literals — the next measurement overwrites that storage in place
//     (the zero-alloc incremental-classification invariant).
//   - goguard: goroutines launched in the serving packages (module root,
//     internal/detector, internal/proxy, internal/obs) carry their own
//     recover() guard — a panic on a fresh stack bypasses the
//     handler-level recovery and kills the process.
//   - metricname: metrics registered on an obs registry use snake_case
//     names with a unit suffix (_seconds/_bytes/_total) and are unique
//     per package, keeping the PR-5 metric inventory greppable and
//     Prometheus-legal.
//   - maporder:  a for-range over a map whose body feeds an
//     order-sensitive sink (slice append, counter-indexed slot write,
//     float accumulation, serialization) without a deterministic order
//     is flagged — exactly the class that silently breaks bit-identical
//     re-scoring.
//   - hotalloc:  functions annotated "//dynalint:hotpath" must contain
//     no allocation sites (make/new, unamortized append, string
//     concat/conversion, interface boxing, escaping closures) — the
//     PR 5/6 alloc-count tests as line-level findings.
//   - panicmsg:  every panic in internal/ml and internal/detector
//     carries the named "pkg: ..." prefix the detector's quarantine
//     ladder attributes faults on.
//
// A finding on a specific line can be suppressed with a
// "//dynalint:ignore <analyzer> <reason>" comment on the same line or the
// line above; the reason is mandatory by convention, not by the parser.
// A directive above a multi-line statement suppresses the analyzer on
// every line the statement spans.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical "file:line: analyzer:
// message" form the driver prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass is one analyzed package: its parsed files plus the metadata the
// analyzers key scope decisions on.
type Pass struct {
	Fset *token.FileSet
	// PkgPath is the module-relative directory of the package, e.g.
	// "internal/features" ("" for the module root). floatsafe scopes on it.
	PkgPath string
	// PkgName is the declared package name; zerotime exempts "main".
	PkgName string
	Files   []*ast.File

	// Info holds the go/types result for the package, or nil when the
	// driver could not type-check it and the pass degraded to
	// syntactic-only analysis. Analyzers must treat nil as "no type
	// information", never as an error.
	Info *types.Info
	// Pkg is the type-checked package object paired with Info.
	Pkg *types.Package

	// ignores maps filename -> line -> analyzers suppressed on that line.
	ignores map[string]map[int]map[string]bool
	// above maps filename -> line -> analyzers suppressed by a directive
	// on the previous line; a statement starting on that line extends the
	// suppression over every line it spans.
	above map[string]map[int]map[string]bool
}

// Typed reports whether the pass carries type information.
func (p *Pass) Typed() bool { return p.Info != nil }

// TypeOf returns the type of e, or nil when the pass is untyped or the
// expression was not reached by the checker.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// Analyzer is one dynalint check.
type Analyzer interface {
	// Name is the short identifier used in findings and ignore directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run analyzes the package and returns its findings (ignore
	// directives are applied by the framework, not the analyzer).
	Run(pass *Pass) []Finding
}

// All returns the full suite in reporting order.
func All() []Analyzer {
	return []Analyzer{
		Hostfold{}, Zerotime{}, Lockscope{}, Floatsafe{}, Scratchsafe{},
		Goguard{}, Metricname{}, Maporder{}, Hotalloc{}, Panicmsg{},
	}
}

// NewPass assembles a Pass and indexes its ignore directives. Files must
// all belong to the same package and have been parsed with
// parser.ParseComments. Attach type information by setting Info and Pkg
// before Run.
func NewPass(fset *token.FileSet, pkgPath string, files []*ast.File) *Pass {
	p := &Pass{
		Fset:    fset,
		PkgPath: pkgPath,
		Files:   files,
		ignores: map[string]map[int]map[string]bool{},
		above:   map[string]map[int]map[string]bool{},
	}
	for _, f := range files {
		if p.PkgName == "" && f.Name != nil {
			p.PkgName = f.Name.Name
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p.indexIgnore(c)
			}
		}
	}
	for _, f := range files {
		p.extendIgnores(f)
	}
	return p
}

// addIgnore suppresses one analyzer on one line.
func addTo(m map[string]map[int]map[string]bool, file string, line int, name string) {
	byLine := m[file]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		m[file] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = map[string]bool{}
		byLine[line] = set
	}
	set[name] = true
}

// indexIgnore records a "//dynalint:ignore name [reason]" directive. The
// directive suppresses the named analyzer on its own line (trailing
// comment) and on the following line (comment-above form); extendIgnores
// later widens the comment-above form over multi-line statements.
func (p *Pass) indexIgnore(c *ast.Comment) {
	text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "dynalint:ignore") {
		return
	}
	fields := strings.Fields(strings.TrimPrefix(text, "dynalint:ignore"))
	if len(fields) == 0 {
		return
	}
	pos := p.Fset.Position(c.Pos())
	addTo(p.ignores, pos.Filename, pos.Line, fields[0])
	addTo(p.ignores, pos.Filename, pos.Line+1, fields[0])
	addTo(p.above, pos.Filename, pos.Line+1, fields[0])
}

// extendIgnores widens the comment-above directive form: a directive on
// the line above a statement or declaration that spans several lines
// suppresses the analyzer on every line the node spans, so findings
// reported against the statement's later lines (a wrapped call argument,
// a multi-line composite literal) are still covered.
func (p *Pass) extendIgnores(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl:
		default:
			return true
		}
		start := p.Fset.Position(n.Pos())
		end := p.Fset.Position(n.End())
		if end.Line <= start.Line {
			return true
		}
		set := p.above[start.Filename][start.Line]
		for name := range set {
			for line := start.Line + 1; line <= end.Line; line++ {
				addTo(p.ignores, start.Filename, line, name)
			}
		}
		return true
	})
}

// ignored reports whether the named analyzer is suppressed at pos.
func (p *Pass) ignored(name string, pos token.Position) bool {
	return p.ignores[pos.Filename][pos.Line][name]
}

// Run executes the analyzers over the pass, drops suppressed findings,
// and returns the remainder in file/line order.
func Run(pass *Pass, analyzers []Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(pass) {
			if pass.ignored(a.Name(), f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// finding builds a Finding at a node's position.
func (p *Pass) finding(name string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Analyzer: name, Message: fmt.Sprintf(format, args...)}
}

// walkStack traverses root depth-first, invoking fn with the ancestor
// path; stack[len(stack)-1] is the current node.
func walkStack(root ast.Node, fn func(stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(append([]ast.Node(nil), stack...))
		return true
	})
}

// chainText renders an ident/selector chain ("sh.eng", "a.Time") for
// textual receiver matching; expressions outside that shape collapse to
// a coarse form or "".
func chainText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := chainText(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return chainText(x.X)
	case *ast.StarExpr:
		return chainText(x.X)
	case *ast.UnaryExpr:
		return chainText(x.X)
	case *ast.IndexExpr:
		if base := chainText(x.X); base != "" {
			return base + "[]"
		}
	case *ast.CallExpr:
		if base := chainText(x.Fun); base != "" {
			return base + "()"
		}
	}
	return ""
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isEmptyStringLit reports whether e is the literal "".
func isEmptyStringLit(e ast.Expr) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING && (lit.Value == `""` || lit.Value == "``")
}

// enclosingFunc returns the innermost FuncDecl or FuncLit body on the
// stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}
