package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Panicmsg enforces the panic-attribution convention the detector's
// quarantine ladder depends on: a panic that escapes a scoring call is
// classified by its message prefix ("ml: ..." quarantines the model,
// anything else indicts the caller), so every panic raised inside
// internal/ml and internal/detector must carry the `"<pkg>: "` prefix.
// PR 6 established the convention; this analyzer fossilizes it.
//
// A panic argument is accepted when it is:
//
//   - a string literal starting with the package prefix;
//   - fmt.Sprintf / fmt.Errorf / errors.New whose first argument is a
//     string literal starting with the prefix;
//   - a re-panic of a recovered value (the enclosing function calls
//     recover(); it is propagating someone else's panic, not minting
//     its own).
//
// Everything else — a bare value, an unprefixed literal, a message
// built where the analyzer cannot see the prefix — is flagged.
type Panicmsg struct{}

// Name implements Analyzer.
func (Panicmsg) Name() string { return "panicmsg" }

// Doc implements Analyzer.
func (Panicmsg) Doc() string {
	return `panics in internal/ml and internal/detector without the "pkg: ..." prefix the quarantine ladder attributes on`
}

// panicmsgScoped reports whether the analyzer applies to the package:
// the quarantine ladder only attributes panics crossing the ml/detector
// boundary.
func panicmsgScoped(pkgPath string) bool {
	base := pkgBase(pkgPath)
	return base == "ml" || base == "detector"
}

// pkgBase returns the last path element of an import path.
func pkgBase(pkgPath string) string {
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}

// litHasPrefix reports whether e is a string literal whose value starts
// with prefix.
func litHasPrefix(e ast.Expr, prefix string) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok {
		return false
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil {
		return false
	}
	return strings.HasPrefix(val, prefix)
}

// prefixedArg reports whether the panic argument provably carries the
// package prefix: a prefixed literal, or a message-constructing call
// (fmt.Sprintf, fmt.Errorf, errors.New) whose format/first argument is
// a prefixed literal.
func prefixedArg(arg ast.Expr, prefix string) bool {
	arg = unparen(arg)
	if litHasPrefix(arg, prefix) {
		return true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch {
	case pkg.Name == "fmt" && (sel.Sel.Name == "Sprintf" || sel.Sel.Name == "Errorf"):
		return litHasPrefix(call.Args[0], prefix)
	case pkg.Name == "errors" && sel.Sel.Name == "New":
		return litHasPrefix(call.Args[0], prefix)
	}
	return false
}

// callsRecover reports whether the function body calls recover()
// anywhere — such functions re-panic values they did not mint.
func callsRecover(fn ast.Node) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

// Run implements Analyzer.
func (p Panicmsg) Run(pass *Pass) []Finding {
	if !panicmsgScoped(pass.PkgPath) {
		return nil
	}
	prefix := pkgBase(pass.PkgPath) + ": "
	var out []Finding
	for _, f := range pass.Files {
		walkStack(f, func(stack []ast.Node) {
			call, ok := stack[len(stack)-1].(*ast.CallExpr)
			if !ok {
				return
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" || len(call.Args) != 1 {
				return
			}
			if prefixedArg(call.Args[0], prefix) {
				return
			}
			if callsRecover(enclosingFunc(stack)) {
				return // re-panicking a recovered value
			}
			out = append(out, pass.finding(p.Name(), call.Pos(),
				"panic message must start with %q so the quarantine ladder can attribute it; use panic(fmt.Sprintf(%q, ...))",
				prefix, prefix+"..."))
		})
	}
	return out
}
