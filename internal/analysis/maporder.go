package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder keeps map iteration away from order-sensitive outputs. Go
// randomizes map iteration order per range statement, so a loop over a
// map whose body appends to a slice, writes counter-indexed slots,
// accumulates a float, or writes serialized output produces a different
// result on every run — exactly the class of bug that silently breaks
// the project's bit-identical re-scoring contracts (provenance-journal
// vectors, flat-vs-pointer forest agreement, snapshot assembly).
//
// The analyzer flags a for-range over a map (resolved through go/types;
// without type information it falls back to locally-provable map
// declarations) whose body contains:
//
//   - an append call — sanctioned when the enclosing function sorts
//     after the loop (sort.* or slices.Sort* below the range statement),
//     the collect-then-sort idiom;
//   - an assignment to a counter-indexed slice/array slot (s[i] = v
//     where i is mutated inside the loop) — the slot an element lands in
//     depends on iteration order;
//   - a floating-point accumulation (x += v and friends) — float
//     addition is not associative, so the accumulated bits depend on
//     iteration order;
//   - a serialization call (fmt printing, Write*, Encode) — bytes are
//     emitted in map order.
//
// Integer accumulation, map-to-map writes, and key-indexed slot writes
// (s[k] = v, each key its own slot) are order-insensitive and never
// flagged. Sites that are deliberately order-free can carry a reasoned
// //dynalint:ignore maporder directive.
type Maporder struct{}

// Name implements Analyzer.
func (Maporder) Name() string { return "maporder" }

// Doc implements Analyzer.
func (Maporder) Doc() string {
	return "map iteration feeding order-sensitive sinks (append, indexed writes, float sums, serialization) without a deterministic order"
}

// serializeMethods are method names treated as serialization sinks.
var serializeMethods = map[string]bool{
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// sortCallNames are the sort.*/slices.* functions that sanction an
// append sink when called after the loop.
var sortCallNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true,
}

// isMapRange reports whether rs ranges over a map. With type information
// the answer is exact; without it, only ranges over expressions whose
// map-ness is locally provable (a map literal, or an identifier declared
// in the enclosing function as a map) are recognized.
func isMapRange(pass *Pass, stack []ast.Node, rs *ast.RangeStmt) bool {
	if t := pass.TypeOf(rs.X); t != nil {
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	switch x := unparen(rs.X).(type) {
	case *ast.CompositeLit:
		_, ok := x.Type.(*ast.MapType)
		return ok
	case *ast.Ident:
		fn := enclosingFunc(stack)
		if fn == nil {
			return false
		}
		return localMapIdent(funcBody(fn), x.Name)
	}
	return false
}

// localMapIdent reports whether the function body declares name as a map
// via make(map...), a map literal, or an explicit map-typed var.
func localMapIdent(body *ast.BlockStmt, name string) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name != name || i >= len(x.Rhs) {
					continue
				}
				if exprIsMap(x.Rhs[i]) {
					found = true
				}
			}
		case *ast.ValueSpec:
			for _, id := range x.Names {
				if id.Name != name {
					continue
				}
				if _, ok := x.Type.(*ast.MapType); ok {
					found = true
				}
				for _, v := range x.Values {
					if exprIsMap(v) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// exprIsMap reports whether e is syntactically a map value: make(map...)
// or a map composite literal.
func exprIsMap(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
			_, isMap := x.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := x.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// hasPostLoopSort reports whether the enclosing function calls a sort.*
// or slices.* sorting function lexically after the range statement.
func hasPostLoopSort(fn ast.Node, rs *ast.RangeStmt) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortCallNames[sel.Sel.Name] {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
			found = true
		}
		return !found
	})
	return found
}

// loopLocal reports whether an append destination is declared inside the
// loop body: each iteration then builds its own slice, so map order
// cannot influence any single result (the per-key rebuild idiom, e.g.
// filtering each value list of a map in place). An outer accumulator
// the local slice later feeds would itself be an append inside the loop
// and get flagged on its own.
func loopLocal(pass *Pass, body *ast.BlockStmt, dst ast.Expr) bool {
	id, ok := unparen(dst).(*ast.Ident)
	if !ok {
		return false
	}
	if obj := pass.ObjectOf(id); obj != nil {
		return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for _, lhs := range as.Lhs {
			if lid, ok := unparen(lhs).(*ast.Ident); ok && lid.Name == id.Name {
				found = true
			}
		}
		return !found
	})
	return found
}

// mutatedIn reports whether the identifier name is assigned or
// incremented anywhere in body (the counter-in-a-map-loop pattern),
// excluding the assignment node skip itself.
func mutatedIn(body *ast.BlockStmt, name string, skip ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		switch x := n.(type) {
		case *ast.IncDecStmt:
			if id, ok := unparen(x.X).(*ast.Ident); ok && id.Name == name {
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isFloatExpr reports whether e has floating-point type. Without type
// information the answer is false (the accumulation rule is typed-only:
// flagging integer sums would drown the signal).
func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMapIndexExpr reports whether e indexes into a map.
func isMapIndexExpr(pass *Pass, e ast.Expr) bool {
	ix, ok := unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// sliceIndexWrite reports whether lhs is an index expression into a
// slice or array (not a map). Untyped passes answer false: m[k] = v into
// a map is the dominant, order-insensitive case.
func sliceIndexWrite(pass *Pass, lhs ast.Expr) (*ast.IndexExpr, bool) {
	ix, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return nil, false
	}
	t := pass.TypeOf(ix.X)
	if t == nil {
		return nil, false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return ix, true
	case *types.Pointer:
		if p, ok := t.Underlying().(*types.Pointer); ok {
			if _, arr := p.Elem().Underlying().(*types.Array); arr {
				return ix, true
			}
		}
	}
	return nil, false
}

// Run implements Analyzer.
func (m Maporder) Run(pass *Pass) []Finding {
	var out []Finding
	for _, f := range pass.Files {
		walkStack(f, func(stack []ast.Node) {
			rs, ok := stack[len(stack)-1].(*ast.RangeStmt)
			if !ok || rs.Body == nil || !isMapRange(pass, stack, rs) {
				return
			}
			sorted := hasPostLoopSort(enclosingFunc(stack), rs)
			out = append(out, m.checkBody(pass, rs, sorted)...)
		})
	}
	return out
}

// checkBody scans one map-range body for order-sensitive sinks.
func (m Maporder) checkBody(pass *Pass, rs *ast.RangeStmt, sorted bool) []Finding {
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, pass.finding(m.Name(), pos, format, args...))
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports its own findings; avoid doubling.
			if n != rs && isMapRange(pass, []ast.Node{x}, x) {
				return false
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
				if !sorted && len(x.Args) > 0 && !loopLocal(pass, rs.Body, x.Args[0]) {
					report(x.Pos(), "append inside map iteration collects in nondeterministic order; sort the keys first or sort the result after the loop")
				}
				return true
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && serializeMethods[sel.Sel.Name] {
				report(x.Pos(), "%s inside map iteration serializes in nondeterministic order; iterate sorted keys instead", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			out = append(out, m.checkAssign(pass, rs, x)...)
		}
		return true
	})
	return out
}

// checkAssign flags order-sensitive assignments inside a map-range body:
// float accumulation and counter-indexed slot writes.
func (m Maporder) checkAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) []Finding {
	var out []Finding
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			// A keyed map-element accumulator (acc[k] += v, one slot per
			// distinct range key) is order-insensitive slot-wise; only
			// scalar/field accumulators depend on iteration order.
			if isMapIndexExpr(pass, lhs) {
				continue
			}
			if isFloatExpr(pass, lhs) {
				out = append(out, pass.finding(m.Name(), as.Pos(),
					"floating-point accumulation inside map iteration is order-dependent (float addition is not associative); iterate sorted keys"))
			}
		}
	case token.ASSIGN:
		// x = x + v self-reference form of the accumulator.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isFloatExpr(pass, as.Lhs[0]) {
			if bin, ok := unparen(as.Rhs[0]).(*ast.BinaryExpr); ok {
				lhsText := chainText(as.Lhs[0])
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if lhsText != "" && (chainText(bin.X) == lhsText || chainText(bin.Y) == lhsText) {
						out = append(out, pass.finding(m.Name(), as.Pos(),
							"floating-point accumulation inside map iteration is order-dependent (float addition is not associative); iterate sorted keys"))
					}
				}
			}
		}
	}
	for _, lhs := range as.Lhs {
		ix, ok := sliceIndexWrite(pass, lhs)
		if !ok {
			continue
		}
		id, ok := unparen(ix.Index).(*ast.Ident)
		if !ok || !mutatedIn(rs.Body, id.Name, nil) {
			continue // key-indexed writes land each key in its own slot
		}
		out = append(out, pass.finding(m.Name(), lhs.Pos(),
			"counter-indexed slot write inside map iteration places elements in nondeterministic order; iterate sorted keys"))
	}
	return out
}
