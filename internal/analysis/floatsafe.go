package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Floatsafe keeps the feature vector finite. The ERF consumes the
// 37-dimensional vector of Table II; a division by a zero denominator
// puts an Inf or NaN in a slot, and a NaN poisons every tree-split
// comparison downstream (NaN compares false with everything), silently
// degrading the classifier instead of failing loudly. The paper's
// payload-agnostic representation only works if every feature is a real
// number.
//
// The analyzer runs only over feature-extraction packages (import path
// containing "internal/features"). It flags a division whose result
// flows into a feature-vector slot — an assignment with an index
// expression on the left, or an append(...) argument — unless the
// denominator is a non-zero constant or an enclosing if/guard in the
// same function mentions one of the denominator's identifiers (the
// `if reqs > 0 { v[35] = x / float64(reqs) }` idiom, or an early-return
// guard).
type Floatsafe struct{}

// Name implements Analyzer.
func (Floatsafe) Name() string { return "floatsafe" }

// Doc implements Analyzer.
func (Floatsafe) Doc() string {
	return "feature-vector divisions without a zero-denominator guard (vector must stay finite)"
}

// constNonZero reports whether e is a compile-time non-zero numeric
// literal (possibly via a conversion or unary sign).
func constNonZero(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.BasicLit:
		return (x.Kind == token.INT || x.Kind == token.FLOAT) &&
			strings.ContainsAny(x.Value, "123456789")
	case *ast.UnaryExpr:
		return constNonZero(x.X)
	case *ast.CallExpr:
		// Conversions like float64(8) keep constancy for one argument.
		if len(x.Args) == 1 {
			return constNonZero(x.Args[0])
		}
	}
	return false
}

// flowsIntoVector reports whether the stack shows the division feeding a
// vector slot: an ancestor assignment whose LHS indexes a slice/array,
// or an ancestor append call.
func flowsIntoVector(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch x := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if _, ok := unparen(lhs).(*ast.IndexExpr); ok {
					return true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
				return true
			}
		}
	}
	return false
}

// leafNames collects the value-carrying names of an expression: bare
// identifiers and the final field of selector chains, skipping function
// names (so `float64(s.Count)` yields only "Count", and the shared
// receiver `s` never causes a spurious guard match).
func leafNames(e ast.Expr, into map[string]bool) {
	switch x := e.(type) {
	case *ast.Ident:
		into[x.Name] = true
	case *ast.SelectorExpr:
		into[x.Sel.Name] = true
	case *ast.ParenExpr:
		leafNames(x.X, into)
	case *ast.UnaryExpr:
		leafNames(x.X, into)
	case *ast.BinaryExpr:
		leafNames(x.X, into)
		leafNames(x.Y, into)
	case *ast.CallExpr:
		for _, a := range x.Args {
			leafNames(a, into)
		}
	case *ast.IndexExpr:
		leafNames(x.X, into)
		leafNames(x.Index, into)
	}
}

// denomGuarded reports whether a leaf name of the denominator is
// mentioned by an enclosing if condition on the stack, or by an
// early-exit if anywhere in the enclosing function.
func denomGuarded(stack []ast.Node, denom ast.Expr) bool {
	names := map[string]bool{}
	leafNames(denom, names)
	if len(names) == 0 {
		return false
	}
	mentions := func(cond ast.Expr) bool {
		condNames := map[string]bool{}
		leafNames(cond, condNames)
		for n := range condNames {
			if names[n] {
				return true
			}
		}
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if ifst, ok := stack[i].(*ast.IfStmt); ok && mentions(ifst.Cond) {
			return true
		}
	}
	if fn := enclosingFunc(stack); fn != nil {
		body := funcBody(fn)
		guarded := false
		ast.Inspect(body, func(n ast.Node) bool {
			ifst, ok := n.(*ast.IfStmt)
			if !ok || !mentions(ifst.Cond) {
				return true
			}
			ast.Inspect(ifst.Body, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.ReturnStmt, *ast.BranchStmt:
					guarded = true
				}
				return true
			})
			return true
		})
		return guarded
	}
	return false
}

// Run implements Analyzer.
func (fs Floatsafe) Run(pass *Pass) []Finding {
	if !strings.Contains(pass.PkgPath, "internal/features") {
		return nil
	}
	var out []Finding
	for _, f := range pass.Files {
		walkStack(f, func(stack []ast.Node) {
			div, ok := stack[len(stack)-1].(*ast.BinaryExpr)
			if !ok || div.Op != token.QUO {
				return
			}
			if constNonZero(div.Y) {
				return
			}
			if !flowsIntoVector(stack) {
				return
			}
			if denomGuarded(stack, div.Y) {
				return
			}
			out = append(out, pass.finding(fs.Name(), div.Pos(),
				"division flowing into a feature-vector slot without a zero-denominator guard; a zero denominator makes the vector non-finite and poisons the ERF"))
		})
	}
	return out
}
