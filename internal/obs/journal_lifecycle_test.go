package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// syncCountingWriter counts Sync calls and optionally fails them.
type syncCountingWriter struct {
	bytes.Buffer
	syncs   int
	syncErr error
}

func (w *syncCountingWriter) Sync() error {
	w.syncs++
	return w.syncErr
}

func TestJournalFsyncEvery(t *testing.T) {
	w := &syncCountingWriter{}
	j := NewJournalWriterWith(w, JournalConfig{FsyncEvery: 2})
	for i := 0; i < 5; i++ {
		if err := j.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.syncs != 2 {
		t.Fatalf("syncs after 5 appends with FsyncEvery=2: %d, want 2", w.syncs)
	}
	if j.Syncs() != 2 || j.SyncFailures() != 0 {
		t.Fatalf("sync counters = %d/%d, want 2/0", j.Syncs(), j.SyncFailures())
	}
	// Explicit Sync flushes the odd record out.
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 3 {
		t.Fatalf("syncs after explicit Sync: %d, want 3", w.syncs)
	}
}

func TestJournalFsyncInterval(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	w := &syncCountingWriter{}
	j := NewJournalWriterWith(w, JournalConfig{FsyncInterval: time.Second, Now: clock})

	if err := j.Append(sampleRecord(0)); err != nil { // within the interval
		t.Fatal(err)
	}
	if w.syncs != 0 {
		t.Fatalf("sync fired inside the interval (%d)", w.syncs)
	}
	now = now.Add(2 * time.Second)
	if err := j.Append(sampleRecord(1)); err != nil { // interval elapsed
		t.Fatal(err)
	}
	if w.syncs != 1 {
		t.Fatalf("syncs after interval elapsed: %d, want 1", w.syncs)
	}
	// The interval clock resets at the sync.
	if err := j.Append(sampleRecord(2)); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 1 {
		t.Fatalf("sync fired again without the interval elapsing (%d)", w.syncs)
	}
}

func TestJournalSyncFailureCountedNotFatal(t *testing.T) {
	w := &syncCountingWriter{syncErr: fmt.Errorf("disk gone")}
	j := NewJournalWriterWith(w, JournalConfig{FsyncEvery: 1})
	// The append itself succeeds — the bytes are with the OS — and the
	// refused fsync is counted, not propagated.
	if err := j.Append(sampleRecord(0)); err != nil {
		t.Fatalf("append failed on a sync error: %v", err)
	}
	if j.SyncFailures() != 1 || j.Syncs() != 0 {
		t.Fatalf("sync counters = %d/%d, want 0 syncs, 1 failure", j.Syncs(), j.SyncFailures())
	}
	if err := j.Sync(); err == nil {
		t.Fatal("explicit Sync must surface the sink's error")
	}
}

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alerts.jsonl")
	// Records are a few hundred bytes; rotate after ~one record.
	j, err := NewJournalWith(path, JournalConfig{MaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	total := 6
	for i := 0; i < total; i++ {
		if err := j.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Rotations() == 0 {
		t.Fatal("no rotation happened")
	}

	// Every record survives, spread across the live file and the rotated
	// generations, in order.
	var all []AlertRecord
	for i := int(j.Rotations()); i >= 1; i-- {
		recs, err := ReadJournalFile(fmt.Sprintf("%s.%d", path, i))
		if err != nil {
			t.Fatalf("rotated file %d: %v", i, err)
		}
		all = append(recs, all...)
	}
	live, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, live...)
	if len(all) != total {
		t.Fatalf("recovered %d records across rotations, want %d", len(all), total)
	}
	for i, rec := range all {
		if rec.ClusterID != 41+i {
			t.Fatalf("record %d out of order: cluster %d", i, rec.ClusterID)
		}
	}

	// Reopening continues the rotation sequence instead of clobbering it.
	j2, err := NewJournalWith(path, JournalConfig{MaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j2.Append(sampleRecord(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	j2.Close()
	seq := int(j.Rotations()) + 1
	if _, err := os.Stat(fmt.Sprintf("%s.%d", path, seq)); err != nil {
		t.Fatalf("reopened journal did not continue the rotation sequence at .%d: %v", seq, err)
	}
}

func TestJournalFileSyncPolicy(t *testing.T) {
	// The file-backed journal must actually reach the os.File Sync path.
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	j, err := NewJournalWith(path, JournalConfig{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(sampleRecord(0)); err != nil {
		t.Fatal(err)
	}
	if j.Syncs() != 1 {
		t.Fatalf("file journal syncs = %d, want 1", j.Syncs())
	}
}
