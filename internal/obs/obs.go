// Package obs is DynaMiner's observability core: a dependency-free
// metrics registry (sharded atomic counters, gauges, fixed-bucket latency
// histograms), a Prometheus text-format exposition writer with a matching
// parser for tests and CI gates, an opt-in admin HTTP server
// (/metrics, /healthz, /snapshot, /debug/pprof/), and an append-only
// alert provenance journal that turns every on-the-wire alert into a
// replayable forensic artifact.
//
// Design rules:
//
//   - Zero allocations on the observation hot path. Counter.Inc/Add,
//     Gauge.Set/Add and Histogram.Observe touch only pre-allocated
//     atomics; everything name- or label-shaped is resolved once at
//     registration time (benchmark-pinned in bench_test.go).
//   - One registry per serving instance. A Monitor, a ShardedEngine, or a
//     Proxy owns (or is handed) a Registry; per-instance Stats structs are
//     bridged views over it, so two engines in one process never mix
//     counters. Process-wide library metrics (the httpstream parsers) live
//     on the package Default registry.
//   - Sharded writers. A Counter hands out cache-line-padded Cells via
//     NewCell, one per engine shard; each shard increments its own cell
//     with no contention and reads it back for the per-shard Stats view,
//     while Counter.Value sums all cells for the registry-wide total.
//   - Metric names are validated at registration: snake_case with a unit
//     suffix (_seconds, _bytes, _total), unique per registry, enforced
//     statically by the dynalint metricname analyzer as well.
//   - No clocks of its own. The package never calls time.Now() bare; the
//     registry carries an injectable clock (SetClock) defaulting to the
//     wall clock, so replay-deterministic tests can freeze time.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// defaultClock is the wall clock, as a function value so library code
// never calls time.Now() bare (the zerotime invariant).
var defaultClock = time.Now

// validSuffixes are the unit suffixes a metric name must carry, mirrored
// by the dynalint metricname analyzer.
var validSuffixes = []string{"_seconds", "_bytes", "_total"}

// ValidateMetricName reports why a metric name is unacceptable, or nil:
// names must be snake_case ([a-z][a-z0-9_]*) and end in a unit suffix.
func ValidateMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return fmt.Errorf("obs: metric name %q is not snake_case", name)
		}
	}
	for _, s := range validSuffixes {
		if len(name) > len(s) && name[len(name)-len(s):] == s {
			return nil
		}
	}
	return fmt.Errorf("obs: metric name %q lacks a unit suffix (_seconds, _bytes, _total)", name)
}

// metricKind discriminates the registry entry types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindGaugeVec
	kindFloatGauge
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeVec, kindFloatGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	vec     *GaugeVec
	fgauge  *FloatGauge
}

// Registry holds a set of named metrics. Registration is get-or-create:
// registering the same name with the same type and shape returns the
// existing metric (so engine shards sharing a registry bind to one
// family), while a name collision across types panics — that is a
// programming error the metricname analyzer catches statically.
//
// Registry is safe for concurrent use; observations on the returned
// metrics are lock-free.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*entry // guarded by mu
	order  []*entry          // guarded by mu; registration order
	now    func() time.Time  // guarded by mu
}

// NewRegistry returns an empty registry using the wall clock.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry), now: defaultClock}
}

// defaultRegistry carries process-wide library metrics (httpstream
// parsing); serving instances own their own registries.
var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// Default returns the process-wide registry for library metrics that have
// no owning instance.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// SetClock injects the registry's time source (admin uptime, timing
// helpers); nil restores the wall clock.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now == nil {
		now = defaultClock
	}
	r.now = now
}

// Now reads the registry's clock.
func (r *Registry) Now() time.Time {
	r.mu.Lock()
	now := r.now
	r.mu.Unlock()
	return now()
}

// register looks up or creates an entry, enforcing name and kind rules.
func (r *Registry) register(name, help string, kind metricKind) (*entry, bool) {
	if err := ValidateMetricName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, already a %s", name, kind, e.kind))
		}
		return e, false
	}
	e := &entry{name: name, help: help, kind: kind}
	r.byName[name] = e
	r.order = append(r.order, e)
	return e, true
}

// Counter returns the named counter, creating it on first registration.
func (r *Registry) Counter(name, help string) *Counter {
	e, fresh := r.register(name, help, kindCounter)
	if fresh {
		e.counter = newCounter()
	}
	return e.counter
}

// Gauge returns the named gauge, creating it on first registration.
func (r *Registry) Gauge(name, help string) *Gauge {
	e, fresh := r.register(name, help, kindGauge)
	if fresh {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// FloatGauge returns the named float-valued gauge, creating it on first
// registration.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	e, fresh := r.register(name, help, kindFloatGauge)
	if fresh {
		e.fgauge = &FloatGauge{}
	}
	return e.fgauge
}

// Histogram returns the named fixed-bucket histogram. bounds are the
// inclusive upper bucket bounds in ascending order (an implicit +Inf
// bucket is appended); re-registration must present identical bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e, fresh := r.register(name, help, kindHistogram)
	if fresh {
		e.hist = newHistogram(bounds)
		return e.hist
	}
	if !sameBounds(e.hist.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	return e.hist
}

// GaugeVec returns the named one-label gauge family. Children are
// resolved once per label value via With — registration time for the
// series, never per observation.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	e, fresh := r.register(name, help, kindGaugeVec)
	if fresh {
		e.vec = &GaugeVec{label: label, children: make(map[string]*Gauge)}
		return e.vec
	}
	if e.vec.label != label {
		panic(fmt.Sprintf("obs: gauge vec %q re-registered with label %q, already %q", name, label, e.vec.label))
	}
	return e.vec
}

// entries snapshots the registration order under the lock.
func (r *Registry) entries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.order...)
}

// CounterValue returns the named counter's current total, or 0 when the
// name is absent or not a counter. A convenience for tests and bridges.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	e, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || e.kind != kindCounter {
		return 0
	}
	return e.counter.Value()
}

// GaugeValue returns the named gauge's current value, or 0 when absent.
func (r *Registry) GaugeValue(name string) int64 {
	r.mu.Lock()
	e, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || e.kind != kindGauge {
		return 0
	}
	return e.gauge.Value()
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.entries() {
		if err := writeFamily(w, e); err != nil {
			return err
		}
	}
	return nil
}

// sortedChildren returns a vec's children in label-value order.
func (v *GaugeVec) sortedChildren() ([]string, map[string]*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	snap := make(map[string]*Gauge, len(v.children))
	for k, g := range v.children {
		keys = append(keys, k)
		snap[k] = g
	}
	sort.Strings(keys)
	return keys, snap
}
