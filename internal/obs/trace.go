package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the pipeline tracing layer: a Tracer records one span tree
// per transaction across the wire path (pcap reassembly → httpstream
// parse → feature extraction → forest scoring → alert/journal write) into
// a fixed-size ring of pre-allocated slots. Recording is zero-alloc on
// the hot path — ActiveTrace comes from a pool, spans live in a fixed
// array, stage names are interned to StageIDs at setup time — and the
// keep/discard decision combines head-based sampling (every Nth
// transaction) with always-keep promotion for slow spans (per-stage EWMA
// threshold) and alert-raising transactions. Kept trees export as Chrome
// trace-event JSON (chrome://tracing / Perfetto), a human-readable flame
// summary, and resolve by the trace_id stamped onto journaled
// AlertRecords.

// maxTraceSpans bounds one transaction's span tree; together with the
// ring size it fixes the tracer's memory footprint
// (ring × sizeof(traceRecord) ≈ ring × 1.2 KiB).
const maxTraceSpans = 24

// traceStackDepth bounds span nesting (open, not-yet-ended spans).
const traceStackDepth = 8

// DefaultTraceRing is the ring capacity when TraceConfig.Ring is zero.
const DefaultTraceRing = 256

// defaultSlowFactor promotes a span when it runs this many times slower
// than its stage's EWMA latency.
const defaultSlowFactor = 4.0

// monoSince is the monotonic elapsed-time clock, as a function value for
// the zerotime convention. Span stamps are offsets from the tracer's
// base instant read through this clock: one monotonic read costs roughly
// half a full time.Now (no wall-clock component), and the hot path takes
// one per span boundary, so the difference is the bulk of the tracer's
// per-transaction cost.
var monoSince = time.Since

// ValidateSpanName reports why a span (stage) name is unacceptable, or
// nil: names must be lowercase dotted "stage.substage" — two or more
// dot-separated snake_case segments ([a-z][a-z0-9_]*) — mirrored by the
// dynalint metricname analyzer's span-literal check.
func ValidateSpanName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty span name")
	}
	segs := strings.Split(name, ".")
	if len(segs) < 2 {
		return fmt.Errorf("obs: span name %q must be dotted stage.substage", name)
	}
	for _, seg := range segs {
		if seg == "" {
			return fmt.Errorf("obs: span name %q has an empty segment", name)
		}
		for i := 0; i < len(seg); i++ {
			c := seg[i]
			switch {
			case c >= 'a' && c <= 'z':
			case c == '_' && i > 0:
			case c >= '0' && c <= '9' && i > 0:
			default:
				return fmt.Errorf("obs: span name %q is not lowercase dotted stage.substage", name)
			}
		}
	}
	return nil
}

// StageID is an interned span name, resolved once via Tracer.Stage at
// setup time so the hot path never touches strings.
type StageID int32

// SpanFlags annotate a span with the serving conditions active when it
// ran — quarantine/degraded attribution, the incremental-vs-rebuild
// path, proxy retry/breaker outcomes.
type SpanFlags uint16

const (
	// SpanAlert marks the span tree of an alert-raising transaction.
	SpanAlert SpanFlags = 1 << iota
	// SpanIncremental marks a classify served from the live WCG cursor.
	SpanIncremental
	// SpanRebuild marks a classify that rebuilt the WCG from scratch.
	SpanRebuild
	// SpanQuarantined marks work on a cluster with a quarantine strike.
	SpanQuarantined
	// SpanDegraded marks work done while the engine was over its latency
	// budget.
	SpanDegraded
	// SpanRetried marks an upstream attempt that was retried.
	SpanRetried
	// SpanBreakerOpen marks a request rejected by an open circuit breaker.
	SpanBreakerOpen
	// SpanShed marks a transaction processed while watches were being shed.
	SpanShed
	// SpanError marks a span that ended by panic or transport error.
	SpanError
)

// String renders the set flags as a comma-joined list (export path only).
func (f SpanFlags) String() string {
	if f == 0 {
		return ""
	}
	names := [...]struct {
		bit  SpanFlags
		name string
	}{
		{SpanAlert, "alert"}, {SpanIncremental, "incremental"},
		{SpanRebuild, "rebuild"}, {SpanQuarantined, "quarantined"},
		{SpanDegraded, "degraded"}, {SpanRetried, "retried"},
		{SpanBreakerOpen, "breaker_open"}, {SpanShed, "shed"},
		{SpanError, "error"},
	}
	parts := make([]string, 0, 4)
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, ",")
}

// Span is one timed stage within a transaction's trace. Start is the
// offset from the trace's begin instant; Dur is negative while the span
// is open.
type Span struct {
	Stage  StageID
	Parent int16 // index of the enclosing span, -1 for the root
	Flags  SpanFlags
	Arg    int32 // stage-specific attribution: shard index, retry attempt
	Start  time.Duration
	Dur    time.Duration
}

// stageInfo is one interned stage: its name, its registry histogram, and
// the EWMA latency that defines "slow" for promotion.
type stageInfo struct {
	name string
	hist *Histogram
	ewma atomic.Uint64 // float64 bits of the stage's EWMA latency, seconds
}

// updateEWMA folds one observation into the stage EWMA (alpha 1/8) and
// reports whether it exceeded slowFactor times the prior average. The
// first observation only warms the average.
//
//dynalint:hotpath
func (s *stageInfo) updateEWMA(x, slowFactor float64) bool {
	for {
		old := s.ewma.Load()
		slow := false
		var next float64
		if old == 0 {
			next = x
		} else {
			prev := math.Float64frombits(old)
			slow = x > slowFactor*prev
			next = prev + (x-prev)/8
		}
		if s.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return slow
		}
	}
}

// traceRecord is one committed span tree, fixed-size so ring slots never
// allocate.
type traceRecord struct {
	id      uint64
	start   time.Time
	n       int
	dropped int32
	sampled bool
	slow    bool
	alert   bool
	spans   [maxTraceSpans]Span
}

// traceSlot is one ring position; the per-slot mutex is taken only on
// commit (kept traces: sampled, slow, or alerting) and on export reads —
// never on the sampled-out hot path.
type traceSlot struct {
	mu   sync.Mutex
	used bool
	rec  traceRecord
}

// TraceConfig tunes a Tracer. The zero value records promotion-only
// (slow and alert traces) into a DefaultTraceRing-slot ring.
type TraceConfig struct {
	// Sample keeps every Nth transaction's trace (head-based sampling);
	// 1 keeps every trace, 0 keeps none by sampling (slow and alert
	// promotion still apply).
	Sample int
	// Ring is the trace ring capacity; 0 selects DefaultTraceRing.
	Ring int
	// SlowFactor promotes a span slower than SlowFactor times its stage
	// EWMA; 0 selects the default (4x).
	SlowFactor float64
	// Now supplies span timestamps; nil selects the wall clock.
	Now func() time.Time
}

// Tracer records per-transaction span trees. One tracer is shared by
// every pipeline component of a serving instance (engine shards, proxy,
// parsers); Stage interning and ring commits are locked, span recording
// is not.
type Tracer struct {
	reg        *Registry
	sample     uint64
	slowFactor float64
	// base is the instant the tracer was built; every span stamp is a
	// monotonic offset from it (one cheap monotonic read per boundary),
	// and wall-clock trace starts are reconstructed as base+offset only
	// when a trace is actually committed.
	base  time.Time
	since func() time.Duration

	// txs counts every Begin; it is both the sampling phase and the
	// trace-id source, so ids are unique and dense per tracer.
	txs atomic.Uint64

	mu     sync.Mutex
	byName map[string]StageID           // guarded by mu
	stages atomic.Pointer[[]*stageInfo] // copy-on-write; hot path loads

	ring []traceSlot
	head atomic.Uint64

	pool sync.Pool // *ActiveTrace

	recorded  *Counter
	sampled   *Counter
	slowKept  *Counter
	alertKept *Counter
	spanDrops *Counter
}

// NewTracer builds a tracer whose per-stage histograms register on reg
// (dynaminer_stage_<stage>_seconds families); a nil reg gets a private
// registry, which keeps the tracer functional but unexported.
func NewTracer(reg *Registry, cfg TraceConfig) *Tracer {
	if reg == nil {
		reg = NewRegistry()
	}
	ring := cfg.Ring
	if ring <= 0 {
		ring = DefaultTraceRing
	}
	sf := cfg.SlowFactor
	if sf <= 0 {
		sf = defaultSlowFactor
	}
	var base time.Time
	var since func() time.Duration
	if cfg.Now == nil {
		base = defaultClock()
		// The production clock: base carries a monotonic reading, so
		// monoSince resolves to one monotonic-clock read per stamp.
		since = func() time.Duration { return monoSince(base) }
	} else {
		now := cfg.Now
		base = now()
		since = func() time.Duration { return now().Sub(base) }
	}
	t := &Tracer{
		reg:        reg,
		sample:     uint64(max(cfg.Sample, 0)),
		slowFactor: sf,
		base:       base,
		since:      since,
		byName:     make(map[string]StageID),
		ring:       make([]traceSlot, ring),
		recorded:   reg.Counter("dynaminer_trace_recorded_total", "span trees committed to the trace ring (sampled, slow-promoted, or alerting)"),
		sampled:    reg.Counter("dynaminer_trace_sampled_total", "span trees kept by head-based every-Nth sampling"),
		slowKept:   reg.Counter("dynaminer_trace_slow_total", "span trees promoted because a stage exceeded its EWMA slow threshold"),
		alertKept:  reg.Counter("dynaminer_trace_alerts_total", "span trees promoted because the transaction raised an alert"),
		spanDrops:  reg.Counter("dynaminer_trace_span_drops_total", "spans dropped because a trace exceeded its fixed span capacity"),
	}
	empty := make([]*stageInfo, 0, 16)
	t.stages.Store(&empty)
	t.pool.New = func() any { return new(ActiveTrace) }
	return t
}

// Sample returns the configured every-Nth sampling interval.
func (t *Tracer) Sample() int {
	if t == nil {
		return 0
	}
	return int(t.sample)
}

// Stage interns a span name, registering its latency histogram
// (dynaminer_stage_<name>_seconds with dots folded to underscores) on
// the tracer's registry. Get-or-create and setup-time only; the name
// must be lowercase dotted stage.substage or Stage panics — the same
// contract the dynalint metricname analyzer enforces statically.
func (t *Tracer) Stage(name string) StageID {
	if err := ValidateSpanName(name); err != nil {
		panic(err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byName[name]; ok {
		return id
	}
	metric := "dynaminer_stage_" + strings.ReplaceAll(name, ".", "_") + "_seconds"
	si := &stageInfo{
		name: name,
		hist: t.reg.Histogram(metric, "latency of the "+name+" pipeline stage", LatencyBuckets),
	}
	cur := *t.stages.Load()
	next := make([]*stageInfo, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = si
	t.stages.Store(&next)
	id := StageID(len(cur))
	t.byName[name] = id
	return id
}

// StageName resolves an interned StageID back to its dotted name.
func (t *Tracer) StageName(id StageID) string {
	if t == nil {
		return ""
	}
	stages := *t.stages.Load()
	if int(id) < 0 || int(id) >= len(stages) {
		return ""
	}
	return stages[id].name
}

// StageEWMA returns a stage's current EWMA latency in seconds (0 until
// the first observation).
func (t *Tracer) StageEWMA(id StageID) float64 {
	if t == nil {
		return 0
	}
	stages := *t.stages.Load()
	if int(id) < 0 || int(id) >= len(stages) {
		return 0
	}
	return math.Float64frombits(stages[id].ewma.Load())
}

// ObserveStage records a stage latency outside any span tree — the hook
// batch-shaped pipeline components (pcap reassembly, httpstream parse)
// use to feed the per-stage histograms and EWMAs without carrying an
// ActiveTrace.
//
//dynalint:hotpath
func (t *Tracer) ObserveStage(id StageID, seconds float64) {
	if t == nil {
		return
	}
	stages := *t.stages.Load()
	if int(id) < 0 || int(id) >= len(stages) {
		return
	}
	stages[id].hist.Observe(seconds)
	stages[id].updateEWMA(seconds, t.slowFactor)
}

// ActiveTrace is one transaction's in-progress span tree. It is owned by
// exactly one goroutine between Begin and Finish; all methods are
// nil-receiver safe so untraced configurations pay only a nil check.
type ActiveTrace struct {
	t  *Tracer
	id uint64
	// startMono is the trace's begin instant as a monotonic offset from
	// the tracer's base; the wall-clock start (base+startMono) is only
	// materialized when the trace commits.
	startMono time.Duration
	sampled   bool
	slow      bool
	alert     bool
	dropped   int32
	n         int
	openN     int
	open      [traceStackDepth]int16
	spans     [maxTraceSpans]Span
}

// rel reads the clock once and returns the offset from the trace start
// (clamped non-negative for misaligned injected clocks).
//
//dynalint:hotpath
func (a *ActiveTrace) rel() time.Duration {
	d := a.t.since() - a.startMono
	if d < 0 {
		return 0
	}
	return d
}

// relAt converts an externally read timestamp (an instrumented layer's
// own latency-clock reading) to an offset from the trace start.
//
//dynalint:hotpath
func (a *ActiveTrace) relAt(at time.Time) time.Duration {
	d := at.Sub(a.t.base) - a.startMono
	if d < 0 {
		return 0
	}
	return d
}

// Begin starts a transaction trace: bumps the transaction counter,
// decides head-based sampling, and hands out a pooled recorder. The
// sampled-out path allocates nothing (pinned by TestTraceHotPathAllocs).
//
//dynalint:hotpath
func (t *Tracer) Begin() *ActiveTrace {
	if t == nil {
		return nil
	}
	return t.BeginIn(t.pool.Get().(*ActiveTrace))
}

// BeginIn is Begin recording into caller-owned storage — a recorder the
// caller embeds (one per engine shard) and reuses across transactions,
// skipping the pool round-trip. A trace begun this way must be finished
// with FinishIn, never Finish: the recorder does not belong to the pool.
//
//dynalint:hotpath
func (t *Tracer) BeginIn(at *ActiveTrace) *ActiveTrace {
	if t == nil || at == nil {
		return nil
	}
	n := t.txs.Add(1)
	at.t = t
	at.id = n
	at.startMono = t.since()
	at.sampled = t.sample > 0 && n%t.sample == 0
	at.slow = false
	at.alert = false
	at.dropped = 0
	at.n = 0
	at.openN = 0
	return at
}

// Finish closes any spans a panic unwound past, commits the tree to the
// ring when it is kept (sampled, slow-promoted, or alerting), and
// returns the recorder to the pool. The ActiveTrace must not be used
// afterwards.
//
//dynalint:hotpath
func (t *Tracer) Finish(at *ActiveTrace) {
	if t == nil || at == nil {
		return
	}
	t.FinishIn(at)
	t.pool.Put(at)
}

// FinishIn is Finish for a trace begun with BeginIn: the caller keeps
// owning the recorder (commit copies the kept tree into the ring), so
// nothing is returned to the pool.
//
//dynalint:hotpath
func (t *Tracer) FinishIn(at *ActiveTrace) {
	if t == nil || at == nil {
		return
	}
	if at.openN > 0 {
		end := at.rel()
		for at.openN > 0 {
			at.openN--
			at.closeSpan(int(at.open[at.openN]), end)
		}
	}
	if at.sampled || at.slow || at.alert {
		t.commit(at)
	}
}

// commit copies the finished tree into the next ring slot.
func (t *Tracer) commit(at *ActiveTrace) {
	slot := &t.ring[(t.head.Add(1)-1)%uint64(len(t.ring))]
	slot.mu.Lock()
	slot.used = true
	r := &slot.rec
	r.id, r.start = at.id, t.base.Add(at.startMono)
	r.n, r.dropped = at.n, at.dropped
	r.sampled, r.slow, r.alert = at.sampled, at.slow, at.alert
	r.spans = at.spans
	slot.mu.Unlock()
	t.recorded.Inc()
	if at.sampled {
		t.sampled.Inc()
	}
	if at.slow {
		t.slowKept.Inc()
	}
	if at.alert {
		t.alertKept.Inc()
	}
	if at.dropped > 0 {
		t.spanDrops.Add(int64(at.dropped))
	}
}

// ID returns the trace id (0 for a nil trace) — the value stamped onto
// AlertRecord.TraceID.
func (a *ActiveTrace) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.id
}

// StartSpan opens a span for the stage, nested under the innermost open
// span, and returns its index (-1 when untraced or out of capacity). The
// first span of a trace starts at offset zero without a clock read: the
// root span begins when the trace does.
//
//dynalint:hotpath
func (a *ActiveTrace) StartSpan(stage StageID) int {
	if a == nil {
		return -1
	}
	var start time.Duration
	if a.n > 0 {
		start = a.rel()
	}
	return a.startSpanRel(stage, start)
}

// StartSpanAt opens a span whose start is an externally read timestamp —
// an instrumented layer that already read a latency clock for its own
// metrics (the detector's classify measurement) passes that reading
// through so one boundary never costs two clock reads.
//
//dynalint:hotpath
func (a *ActiveTrace) StartSpanAt(stage StageID, at time.Time) int {
	if a == nil {
		return -1
	}
	return a.startSpanRel(stage, a.relAt(at))
}

//dynalint:hotpath
func (a *ActiveTrace) startSpanRel(stage StageID, start time.Duration) int {
	if a.n >= maxTraceSpans || a.openN >= traceStackDepth {
		a.dropped++
		return -1
	}
	parent := int16(-1)
	if a.openN > 0 {
		parent = a.open[a.openN-1]
	}
	idx := a.n
	a.spans[idx] = Span{
		Stage:  stage,
		Parent: parent,
		Start:  start,
		Dur:    -1,
	}
	a.open[a.openN] = int16(idx)
	a.openN++
	a.n++
	return idx
}

// EndSpan closes the span at idx, observing its stage histogram and
// EWMA; children left open (a panic unwound past their EndSpan) close at
// the same instant. Closing an already-closed or invalid index is a
// no-op.
//
//dynalint:hotpath
func (a *ActiveTrace) EndSpan(idx int) {
	if a == nil || idx < 0 || idx >= a.n {
		return
	}
	a.endSpanRel(idx, a.rel())
}

// EndSpanAt closes the span at idx at an externally read timestamp — the
// end-of-measurement clock reading an instrumented layer already took for
// its own latency metric.
//
//dynalint:hotpath
func (a *ActiveTrace) EndSpanAt(idx int, at time.Time) {
	if a == nil || idx < 0 || idx >= a.n {
		return
	}
	a.endSpanRel(idx, a.relAt(at))
}

//dynalint:hotpath
func (a *ActiveTrace) endSpanRel(idx int, end time.Duration) {
	for a.openN > 0 {
		top := int(a.open[a.openN-1])
		a.openN--
		a.closeSpan(top, end)
		if top == idx {
			return
		}
	}
	a.closeSpan(idx, end)
}

// closeSpan finalizes one open span at the given end offset. The stage
// EWMA folds in every closed span — slow promotion is never blind — but
// the registry histogram observes only head-sampled traces, keeping the
// exported distribution an unbiased every-Nth view at a fraction of the
// atomic traffic.
//
//dynalint:hotpath
func (a *ActiveTrace) closeSpan(idx int, end time.Duration) {
	sp := &a.spans[idx]
	if sp.Dur >= 0 {
		return
	}
	d := end - sp.Start
	if d < 0 {
		d = 0
	}
	sp.Dur = d
	stages := *a.t.stages.Load()
	if int(sp.Stage) < 0 || int(sp.Stage) >= len(stages) {
		return
	}
	si := stages[sp.Stage]
	secs := d.Seconds()
	if a.sampled {
		si.hist.Observe(secs)
	}
	if si.updateEWMA(secs, a.t.slowFactor) {
		a.slow = true
	}
}

// Annotate ORs flags onto the span at idx.
//
//dynalint:hotpath
func (a *ActiveTrace) Annotate(idx int, flags SpanFlags) {
	if a == nil || idx < 0 || idx >= a.n {
		return
	}
	a.spans[idx].Flags |= flags
}

// SetArg sets the span's stage-specific attribution value (shard index,
// retry attempt).
//
//dynalint:hotpath
func (a *ActiveTrace) SetArg(idx int, arg int32) {
	if a == nil || idx < 0 || idx >= a.n {
		return
	}
	a.spans[idx].Arg = arg
}

// MarkAlert promotes this trace to always-keep (an alert-raising
// transaction) and flags its root span.
//
//dynalint:hotpath
func (a *ActiveTrace) MarkAlert() {
	if a == nil {
		return
	}
	a.alert = true
	if a.n > 0 {
		a.spans[0].Flags |= SpanAlert
	}
}

// TraceSpan is one exported span, stage resolved back to its name.
type TraceSpan struct {
	Stage  string  `json:"stage"`
	Parent int     `json:"parent"` // index into Spans, -1 for the root
	Start  float64 `json:"start_us"`
	Dur    float64 `json:"dur_us"`
	Flags  string  `json:"flags,omitempty"`
	Arg    int32   `json:"arg,omitempty"`
}

// TraceSnapshot is one exported span tree.
type TraceSnapshot struct {
	ID           uint64      `json:"trace_id"`
	Start        time.Time   `json:"start"`
	Sampled      bool        `json:"sampled,omitempty"`
	Slow         bool        `json:"slow,omitempty"`
	Alert        bool        `json:"alert,omitempty"`
	DroppedSpans int         `json:"dropped_spans,omitempty"`
	Spans        []TraceSpan `json:"spans"`
}

// snapshotRecord converts a committed record to its export form.
func snapshotRecord(r *traceRecord, stages []*stageInfo) TraceSnapshot {
	out := TraceSnapshot{
		ID:           r.id,
		Start:        r.start,
		Sampled:      r.sampled,
		Slow:         r.slow,
		Alert:        r.alert,
		DroppedSpans: int(r.dropped),
		Spans:        make([]TraceSpan, 0, r.n),
	}
	for i := 0; i < r.n; i++ {
		sp := &r.spans[i]
		name := ""
		if int(sp.Stage) >= 0 && int(sp.Stage) < len(stages) {
			name = stages[sp.Stage].name
		}
		dur := sp.Dur
		if dur < 0 {
			dur = 0
		}
		out.Spans = append(out.Spans, TraceSpan{
			Stage:  name,
			Parent: int(sp.Parent),
			Start:  float64(sp.Start.Nanoseconds()) / 1e3,
			Dur:    float64(dur.Nanoseconds()) / 1e3,
			Flags:  sp.Flags.String(),
			Arg:    sp.Arg,
		})
	}
	return out
}

// Snapshots returns every kept span tree in the ring, oldest first.
func (t *Tracer) Snapshots() []TraceSnapshot {
	if t == nil {
		return nil
	}
	stages := *t.stages.Load()
	out := make([]TraceSnapshot, 0, len(t.ring))
	for i := range t.ring {
		slot := &t.ring[i]
		slot.mu.Lock()
		if !slot.used {
			slot.mu.Unlock()
			continue
		}
		rec := slot.rec
		slot.mu.Unlock()
		out = append(out, snapshotRecord(&rec, stages))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find resolves a trace id (an AlertRecord.TraceID) to its span tree, if
// it is still in the ring.
func (t *Tracer) Find(id uint64) (TraceSnapshot, bool) {
	if t == nil || id == 0 {
		return TraceSnapshot{}, false
	}
	stages := *t.stages.Load()
	for i := range t.ring {
		slot := &t.ring[i]
		slot.mu.Lock()
		if slot.used && slot.rec.id == id {
			rec := slot.rec
			slot.mu.Unlock()
			return snapshotRecord(&rec, stages), true
		}
		slot.mu.Unlock()
	}
	return TraceSnapshot{}, false
}

// traceEvent is one Chrome trace-event ("X" complete event, microsecond
// timestamps); chrome://tracing and Perfetto load the enclosing file
// directly.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceEventFile is the Chrome trace-event JSON object form.
type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders every kept span tree as Chrome trace-event
// JSON: each transaction becomes one track (tid = trace id), each span a
// complete event carrying its flags and attribution in args.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	file := traceEventFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, tr := range t.Snapshots() {
		base := float64(tr.Start.UnixNano()) / 1e3
		for _, sp := range tr.Spans {
			ev := traceEvent{
				Name: sp.Stage,
				Cat:  "dynaminer",
				Ph:   "X",
				TS:   base + sp.Start,
				Dur:  sp.Dur,
				PID:  1,
				TID:  tr.ID,
				Args: map[string]any{"trace_id": tr.ID, "parent": sp.Parent},
			}
			if sp.Flags != "" {
				ev.Args["flags"] = sp.Flags
			}
			if sp.Arg != 0 {
				ev.Args["arg"] = sp.Arg
			}
			file.TraceEvents = append(file.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// WriteFlameSummary renders a human-readable breakdown: a per-stage
// aggregate table over every kept trace, then the slowest kept tree
// rendered as an indented flame.
func (t *Tracer) WriteFlameSummary(w io.Writer) error {
	snaps := t.Snapshots()
	type agg struct {
		name  string
		count int
		total float64 // µs
		max   float64 // µs
	}
	byStage := map[string]*agg{}
	var rootTotal float64
	slowest := -1
	var slowestRoot float64
	for i, tr := range snaps {
		for j, sp := range tr.Spans {
			a := byStage[sp.Stage]
			if a == nil {
				a = &agg{name: sp.Stage}
				byStage[sp.Stage] = a
			}
			a.count++
			a.total += sp.Dur
			if sp.Dur > a.max {
				a.max = sp.Dur
			}
			if j == 0 {
				rootTotal += sp.Dur
				if sp.Dur > slowestRoot {
					slowestRoot, slowest = sp.Dur, i
				}
			}
		}
	}
	if _, err := fmt.Fprintf(w, "traces kept: %d (ring %d)  span trees export at /trace as chrome://tracing JSON\n",
		len(snaps), len(t.ring)); err != nil {
		return err
	}
	if len(snaps) == 0 {
		return nil
	}
	names := make([]string, 0, len(byStage))
	for n := range byStage {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return byStage[names[i]].total > byStage[names[j]].total })
	fmt.Fprintf(w, "%-28s %8s %12s %12s %12s %7s\n", "stage", "count", "total_ms", "mean_us", "max_us", "%root")
	for _, n := range names {
		a := byStage[n]
		pct := 0.0
		if rootTotal > 0 {
			pct = 100 * a.total / rootTotal
		}
		fmt.Fprintf(w, "%-28s %8d %12.3f %12.1f %12.1f %6.1f%%\n",
			a.name, a.count, a.total/1e3, a.total/float64(a.count), a.max, pct)
	}
	if slowest >= 0 {
		tr := snaps[slowest]
		fmt.Fprintf(w, "\nslowest trace %d (%.1fus", tr.ID, slowestRoot)
		if tr.Alert {
			fmt.Fprint(w, ", alert")
		}
		if tr.Slow {
			fmt.Fprint(w, ", slow-promoted")
		}
		fmt.Fprintln(w, "):")
		writeSpanTree(w, tr.Spans, -1, 1)
	}
	return nil
}

// writeSpanTree renders the children of parent as an indented flame.
func writeSpanTree(w io.Writer, spans []TraceSpan, parent, depth int) {
	for i, sp := range spans {
		if sp.Parent != parent {
			continue
		}
		line := strings.Repeat("  ", depth) + sp.Stage
		fmt.Fprintf(w, "%-30s %10.1fus", line, sp.Dur)
		if sp.Flags != "" {
			fmt.Fprintf(w, "  [%s]", sp.Flags)
		}
		if sp.Arg != 0 {
			fmt.Fprintf(w, "  arg=%d", sp.Arg)
		}
		fmt.Fprintln(w)
		writeSpanTree(w, spans, i, depth+1)
	}
}

// TraceHandler serves a tracer over HTTP: Chrome trace-event JSON by
// default, ?format=flame for the human-readable summary, ?id=N to
// resolve one AlertRecord.TraceID to its span tree. Mounted as the
// /trace admin endpoint.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		if idStr := q.Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			snap, ok := t.Find(id)
			if !ok {
				http.Error(w, "trace not found (evicted from ring or never kept)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
			return
		}
		switch q.Get("format") {
		case "flame":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = t.WriteFlameSummary(w)
		case "", "chrome", "json":
			w.Header().Set("Content-Type", "application/json")
			_ = t.WriteTraceEvents(w)
		default:
			http.Error(w, "unknown format (want chrome or flame)", http.StatusBadRequest)
		}
	})
}
