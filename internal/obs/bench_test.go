package obs

import (
	"testing"
)

// The zero-allocation pins double as benchmarks: the acceptance criterion
// is 0 allocs/op on the counter and histogram hot paths.

func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "hot counter")
	cell := c.NewCell()
	g := r.Gauge("hot_gauge_total", "hot gauge")
	h := r.Histogram("hot_seconds", "hot histogram", LatencyBuckets)
	vec := r.GaugeVec("hot_vec_total", "hot vec", "host")
	child := vec.With("a.example") // resolved once, off the hot path

	cases := map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Cell.Inc":          func() { cell.Inc() },
		"Gauge.Set":         func() { g.Set(7) },
		"Histogram.Observe": func() { h.Observe(0.00042) },
		"GaugeVec child":    func() { child.Inc() },
	}
	for name, f := range cases {
		if avg := testing.AllocsPerRun(1000, f); avg != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, avg)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCellIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		cell := c.NewCell()
		for pb.Next() {
			cell.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00073)
	}
}
