package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// writeFamily renders one registered metric as a Prometheus text-format
// family: HELP, TYPE, then its sample lines.
func writeFamily(w io.Writer, e *entry) error {
	bw := bufio.NewWriter(w)
	if e.help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
	}
	fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
	switch e.kind {
	case kindCounter:
		fmt.Fprintf(bw, "%s %d\n", e.name, e.counter.Value())
	case kindGauge:
		fmt.Fprintf(bw, "%s %d\n", e.name, e.gauge.Value())
	case kindFloatGauge:
		fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.fgauge.Value()))
	case kindGaugeVec:
		keys, children := e.vec.sortedChildren()
		for _, k := range keys {
			fmt.Fprintf(bw, "%s{%s=%q} %d\n", e.name, e.vec.label, escapeLabel(k), children[k].Value())
		}
	case kindHistogram:
		bounds, cum := e.hist.Buckets()
		for i, b := range bounds {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.name, formatFloat(b), cum[i])
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.name, e.hist.Count())
		fmt.Fprintf(bw, "%s_sum %s\n", e.name, formatFloat(e.hist.Sum()))
		fmt.Fprintf(bw, "%s_count %d\n", e.name, e.hist.Count())
	}
	return bw.Flush()
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (the %q quoting handles quotes and
// backslashes; fold newlines explicitly).
func escapeLabel(s string) string { return strings.ReplaceAll(s, "\n", " ") }

// BucketSnapshot is one histogram bucket in a registry snapshot.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"` // cumulative, Prometheus le semantics
}

// MetricSnapshot is one metric's point-in-time value, JSON-shaped for the
// admin /snapshot endpoint and the CLI.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Help string `json:"help,omitempty"`
	// Value carries counters and gauges.
	Value int64 `json:"value,omitempty"`
	// FloatValue carries float-valued gauges.
	FloatValue float64 `json:"float_value,omitempty"`
	// Children carries gauge-vec children keyed by label value.
	Children map[string]int64 `json:"children,omitempty"`
	// Count/Sum/Buckets carry histograms.
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric's current value in
// registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	entries := r.entries()
	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		ms := MetricSnapshot{Name: e.name, Type: e.kind.String(), Help: e.help}
		switch e.kind {
		case kindCounter:
			ms.Value = e.counter.Value()
		case kindGauge:
			ms.Value = e.gauge.Value()
		case kindFloatGauge:
			ms.FloatValue = e.fgauge.Value()
		case kindGaugeVec:
			keys, children := e.vec.sortedChildren()
			ms.Children = make(map[string]int64, len(keys))
			for _, k := range keys {
				ms.Children[k] = children[k].Value()
			}
		case kindHistogram:
			ms.Count = e.hist.Count()
			ms.Sum = e.hist.Sum()
			bounds, cum := e.hist.Buckets()
			for i, b := range bounds {
				ms.Buckets = append(ms.Buckets, BucketSnapshot{UpperBound: b, Count: cum[i]})
			}
		}
		out = append(out, ms)
	}
	return out
}

// ExpositionFamily is one parsed metric family from a /metrics payload.
type ExpositionFamily struct {
	Name    string
	Type    string
	Help    string
	Samples map[string]float64 // sample name + raw label block -> value
}

// ParseExposition validates a Prometheus text-format payload — the check
// the CI admin-endpoint smoke and the exposition tests share. It verifies
// that every sample belongs to a TYPE-declared family, that values parse,
// that histogram families carry consistent _bucket/_sum/_count series
// with non-decreasing cumulative buckets ending at _count, and returns
// the families by name.
func ParseExposition(r io.Reader) (map[string]*ExpositionFamily, error) {
	families := map[string]*ExpositionFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			rest := strings.TrimPrefix(text, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if err := ValidateMetricName(name); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			fam := families[name]
			if fam == nil {
				fam = &ExpositionFamily{Name: name, Samples: map[string]float64{}}
				families[name] = fam
			}
			fam.Help = help
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", line, text)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", line, fields[1])
			}
			fam := families[fields[0]]
			if fam == nil {
				fam = &ExpositionFamily{Name: fields[0], Samples: map[string]float64{}}
				families[fields[0]] = fam
			}
			if fam.Type != "" && fam.Type != fields[1] {
				return nil, fmt.Errorf("line %d: family %q re-typed %s -> %s", line, fields[0], fam.Type, fields[1])
			}
			fam.Type = fields[1]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // free-form comment
		}
		sample, value, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		base := sampleFamily(sample, families)
		if base == nil {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", line, sample)
		}
		if base.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", line, sample)
		}
		if _, dup := base.Samples[sample]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", line, sample)
		}
		base.Samples[sample] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := checkHistogramFamily(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// parseSample splits "name{labels} value" into its sample key and value.
func parseSample(text string) (string, float64, error) {
	// The value is the last whitespace-separated field; the sample key is
	// everything before it (label values never contain raw whitespace in
	// our writer).
	idx := strings.LastIndexAny(text, " \t")
	if idx < 0 {
		return "", 0, fmt.Errorf("malformed sample line %q", text)
	}
	key := strings.TrimSpace(text[:idx])
	v, err := strconv.ParseFloat(text[idx+1:], 64)
	if err != nil {
		return "", 0, fmt.Errorf("sample %q has a non-numeric value: %v", key, err)
	}
	if key == "" {
		return "", 0, fmt.Errorf("malformed sample line %q", text)
	}
	return key, v, nil
}

// sampleFamily resolves a sample key to its declared family, accounting
// for histogram suffixes and label blocks.
func sampleFamily(sample string, families map[string]*ExpositionFamily) *ExpositionFamily {
	name := sample
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	if fam, ok := families[name]; ok {
		return fam
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if fam, ok := families[base]; ok && fam.Type == "histogram" {
				return fam
			}
		}
	}
	return nil
}

// checkHistogramFamily verifies bucket monotonicity and the
// bucket/count/sum contract of one histogram family.
func checkHistogramFamily(fam *ExpositionFamily) error {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	var haveInf bool
	var infCount float64
	count, haveCount := 0.0, false
	_, haveSum := fam.Samples[fam.Name+"_sum"]
	for sample, v := range fam.Samples {
		if !strings.HasPrefix(sample, fam.Name+"_bucket{") {
			continue
		}
		le := sample[strings.IndexByte(sample, '{'):]
		le = strings.TrimPrefix(le, `{le="`)
		le = strings.TrimSuffix(le, `"}`)
		if le == "+Inf" {
			haveInf = true
			infCount = v
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("histogram %q: bad le %q", fam.Name, le)
		}
		buckets = append(buckets, bucket{f, v})
	}
	if v, ok := fam.Samples[fam.Name+"_count"]; ok {
		count, haveCount = v, true
	}
	if !haveInf || !haveCount || !haveSum {
		return fmt.Errorf("histogram %q: missing _bucket{le=\"+Inf\"}, _sum or _count", fam.Name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	prev := 0.0
	for _, b := range buckets {
		if b.count < prev {
			return fmt.Errorf("histogram %q: cumulative bucket counts decrease at le=%g", fam.Name, b.le)
		}
		prev = b.count
	}
	if infCount != count || prev > count {
		return fmt.Errorf("histogram %q: +Inf bucket %g disagrees with _count %g", fam.Name, infCount, count)
	}
	return nil
}
