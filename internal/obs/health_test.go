package obs

// Readiness and runtime-health telemetry tests: every /healthz condition
// must flip the status code and its JSON field independently, and the
// runtime collector must publish live scheduler/heap/GC gauges.

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func healthzGet(t *testing.T, st HealthStatus) (int, HealthStatus) {
	t.Helper()
	h := HealthzHandler(func() HealthStatus { return st })
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	var got HealthStatus
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, w.Body.String())
	}
	return w.Code, got
}

// TestHealthzConditions: each degradation condition alone must turn the
// endpoint 503 with that condition visible in the body; a clean status
// serves 200 ready.
func TestHealthzConditions(t *testing.T) {
	code, got := healthzGet(t, HealthStatus{ModelVersion: "v3"})
	if code != 200 || !got.Ready || got.ModelVersion != "v3" {
		t.Fatalf("clean healthz = %d %+v", code, got)
	}

	cases := []struct {
		name  string
		st    HealthStatus
		check func(HealthStatus) bool
	}{
		{"degraded", HealthStatus{Degraded: true}, func(h HealthStatus) bool { return h.Degraded }},
		{"quarantined", HealthStatus{Quarantined: true}, func(h HealthStatus) bool { return h.Quarantined }},
		{"shedding", HealthStatus{Shedding: true}, func(h HealthStatus) bool { return h.Shedding }},
	}
	for _, tc := range cases {
		code, got := healthzGet(t, tc.st)
		if code != 503 {
			t.Errorf("%s healthz = %d, want 503", tc.name, code)
		}
		if got.Ready || !tc.check(got) {
			t.Errorf("%s healthz body = %+v, want not-ready with the condition set", tc.name, got)
		}
	}

	// Ready is derived, not trusted: a source claiming Ready while also
	// degraded still serves 503.
	if code, got := healthzGet(t, HealthStatus{Ready: true, Degraded: true}); code != 503 || got.Ready {
		t.Fatalf("lying source healthz = %d %+v, want derived 503", code, got)
	}
}

// TestHealthzWithoutSource keeps the legacy contract: no health source
// means a plain-text liveness "ok".
func TestHealthzWithoutSource(t *testing.T) {
	w := httptest.NewRecorder()
	HealthzHandler(nil).ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != 200 || w.Body.String() != "ok\n" {
		t.Fatalf("sourceless /healthz = %d %q", w.Code, w.Body.String())
	}
}

// TestRuntimeCollector: one Collect populates every runtime gauge with a
// live (nonzero where guaranteed) sample.
func TestRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	c.Collect()
	if g := reg.GaugeValue("dynaminer_runtime_goroutines_total"); g < 2 {
		t.Fatalf("goroutines gauge = %v, want at least the test runner's", g)
	}
	if g := reg.GaugeValue("dynaminer_runtime_heap_bytes"); g <= 0 {
		t.Fatalf("heap gauge = %v, want > 0", g)
	}
	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
	}
	for _, want := range []string{
		"dynaminer_runtime_goroutines_total",
		"dynaminer_runtime_heap_bytes",
		"dynaminer_runtime_gc_cycles_total",
		"dynaminer_runtime_gc_pause_p99_seconds",
		"dynaminer_runtime_sched_latency_p99_seconds",
	} {
		if !names[want] {
			t.Errorf("runtime collector did not register %s", want)
		}
	}
	c.Close() // never started: must not hang
}

// TestStartRuntimeCollector: the ticker loop samples on its own and Close
// is idempotent and prompt.
func TestStartRuntimeCollector(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntimeCollector(reg, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for reg.GaugeValue("dynaminer_runtime_goroutines_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("collector ticker never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	c.Close()
}
