package obs

// Tracing-layer tests: the zero-alloc pin for the sampled-out hot path,
// head sampling, slow/alert promotion, ring eviction, and the three
// export surfaces (Chrome trace-event JSON, flame summary, /trace).

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeTraceClock is a deterministic manual clock for span timing tests:
// EWMA promotion only behaves predictably when durations are chosen, not
// measured.
type fakeTraceClock struct{ at time.Time }

func newFakeTraceClock() *fakeTraceClock {
	return &fakeTraceClock{at: time.Unix(1700000000, 0)}
}

func (c *fakeTraceClock) now() time.Time          { return c.at }
func (c *fakeTraceClock) advance(d time.Duration) { c.at = c.at.Add(d) }
func (c *fakeTraceClock) spanOf(s StageID, at *ActiveTrace, d time.Duration) {
	i := at.StartSpan(s)
	c.advance(d)
	at.EndSpan(i)
}

// TestTraceHotPathAllocs is the tentpole perf pin: a sampled-out
// transaction (Begin, a nested span pair, Finish) must not allocate.
// The clock is frozen so zero-duration spans can never trip the EWMA
// slow promotion into a (still alloc-free, but different) commit path.
func TestTraceHotPathAllocs(t *testing.T) {
	frozen := time.Unix(1700000000, 0)
	tr := NewTracer(nil, TraceConfig{Sample: 1 << 40, Now: func() time.Time { return frozen }})
	root := tr.Stage("test.root")
	child := tr.Stage("test.child")
	allocs := testing.AllocsPerRun(200, func() {
		at := tr.Begin()
		r := at.StartSpan(root)
		c := at.StartSpan(child)
		at.SetArg(c, 3)
		at.EndSpan(c)
		at.Annotate(r, SpanIncremental)
		at.EndSpan(r)
		tr.Finish(at)
	})
	if allocs != 0 {
		t.Fatalf("sampled-out trace path allocates %.1f times per transaction, want 0", allocs)
	}
	if got := len(tr.Snapshots()); got != 0 {
		t.Fatalf("sampled-out traces committed %d snapshots, want 0", got)
	}
}

// TestTraceNilSafety pins the untraced deployment cost: every ActiveTrace
// method and Tracer entry point must be a safe no-op on nil receivers.
func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	at := tr.Begin()
	if at != nil {
		t.Fatal("nil tracer Begin returned a trace")
	}
	if i := at.StartSpan(0); i != -1 {
		t.Fatalf("nil trace StartSpan = %d, want -1", i)
	}
	at.EndSpan(0)
	at.Annotate(0, SpanError)
	at.SetArg(0, 7)
	at.MarkAlert()
	if at.ID() != 0 {
		t.Fatal("nil trace has a nonzero id")
	}
	tr.Finish(at)
	tr.ObserveStage(0, 0.1)
	if tr.Snapshots() != nil {
		t.Fatal("nil tracer returned snapshots")
	}
	if _, ok := tr.Find(1); ok {
		t.Fatal("nil tracer found a trace")
	}
}

// TestTraceHeadSampling: Sample=N keeps exactly every Nth transaction,
// ids are dense from 1, and the sampled counter agrees.
func TestTraceHeadSampling(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeTraceClock()
	tr := NewTracer(reg, TraceConfig{Sample: 4, Now: clock.now})
	st := tr.Stage("test.stage")
	for i := 0; i < 10; i++ {
		at := tr.Begin()
		clock.spanOf(st, at, time.Millisecond)
		tr.Finish(at)
	}
	snaps := tr.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("Sample=4 over 10 txs kept %d traces, want 2", len(snaps))
	}
	if snaps[0].ID != 4 || snaps[1].ID != 8 {
		t.Fatalf("kept trace ids %d,%d; want 4,8 (every 4th, ids dense from 1)", snaps[0].ID, snaps[1].ID)
	}
	if !snaps[0].Sampled || snaps[0].Slow || snaps[0].Alert {
		t.Fatalf("kept trace promotion bits wrong: %+v", snaps[0])
	}
	if got := reg.CounterValue("dynaminer_trace_sampled_total"); got != 2 {
		t.Fatalf("sampled counter = %v, want 2", got)
	}
	if got := reg.CounterValue("dynaminer_trace_recorded_total"); got != 2 {
		t.Fatalf("recorded counter = %v, want 2", got)
	}
}

// TestTraceSlowPromotion: with sampling off, a span far above its warmed
// stage EWMA promotes its whole trace into the ring.
func TestTraceSlowPromotion(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeTraceClock()
	tr := NewTracer(reg, TraceConfig{Sample: 0, Now: clock.now})
	st := tr.Stage("test.stage")

	// Warm the EWMA: steady 1ms spans. The first observation seeds the
	// average without promoting; none of these may be kept.
	for i := 0; i < 8; i++ {
		at := tr.Begin()
		clock.spanOf(st, at, time.Millisecond)
		tr.Finish(at)
	}
	if got := len(tr.Snapshots()); got != 0 {
		t.Fatalf("steady-state spans kept %d traces, want 0", got)
	}
	ewma := tr.StageEWMA(st)
	if ewma <= 0 || ewma > 0.002 {
		t.Fatalf("stage EWMA = %v after 1ms spans, want ~0.001", ewma)
	}

	// One 100ms span: >4x the ~1ms EWMA, so the trace is slow-promoted.
	at := tr.Begin()
	clock.spanOf(st, at, 100*time.Millisecond)
	tr.Finish(at)
	snaps := tr.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("slow span kept %d traces, want 1", len(snaps))
	}
	if !snaps[0].Slow || snaps[0].Sampled || snaps[0].Alert {
		t.Fatalf("slow trace promotion bits wrong: %+v", snaps[0])
	}
	if got := reg.CounterValue("dynaminer_trace_slow_total"); got != 1 {
		t.Fatalf("slow counter = %v, want 1", got)
	}
}

// TestTraceAlertPromotion: MarkAlert always keeps the trace and flags its
// root span, regardless of sampling.
func TestTraceAlertPromotion(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeTraceClock()
	tr := NewTracer(reg, TraceConfig{Sample: 0, Now: clock.now})
	st := tr.Stage("test.stage")
	at := tr.Begin()
	id := at.ID()
	i := at.StartSpan(st)
	clock.advance(time.Millisecond)
	at.MarkAlert()
	at.EndSpan(i)
	tr.Finish(at)

	snap, ok := tr.Find(id)
	if !ok {
		t.Fatalf("alerting trace %d not resolvable via Find", id)
	}
	if !snap.Alert || snap.Sampled {
		t.Fatalf("alert trace promotion bits wrong: %+v", snap)
	}
	if len(snap.Spans) != 1 || !strings.Contains(snap.Spans[0].Flags, "alert") {
		t.Fatalf("root span not flagged alert: %+v", snap.Spans)
	}
	if got := reg.CounterValue("dynaminer_trace_alerts_total"); got != 1 {
		t.Fatalf("alert counter = %v, want 1", got)
	}
}

// TestTraceRingEviction: committing more traces than the ring holds
// evicts oldest-first, and evicted ids stop resolving.
func TestTraceRingEviction(t *testing.T) {
	clock := newFakeTraceClock()
	tr := NewTracer(nil, TraceConfig{Sample: 1, Ring: 4, Now: clock.now})
	st := tr.Stage("test.stage")
	for i := 0; i < 10; i++ {
		at := tr.Begin()
		clock.spanOf(st, at, time.Millisecond)
		tr.Finish(at)
	}
	snaps := tr.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("ring of 4 holds %d traces", len(snaps))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if snaps[i].ID != want {
			t.Fatalf("ring keeps ids %v, want the newest 7..10", snaps)
		}
	}
	if _, ok := tr.Find(3); ok {
		t.Fatal("evicted trace 3 still resolvable")
	}
	if _, ok := tr.Find(10); !ok {
		t.Fatal("newest trace 10 not resolvable")
	}
}

// TestTraceSpanNesting checks the exported tree: parent links follow the
// open-span stack, child spans sit inside the root's interval, and spans
// abandoned by a panic-style unwind are closed by Finish.
func TestTraceSpanNesting(t *testing.T) {
	clock := newFakeTraceClock()
	tr := NewTracer(nil, TraceConfig{Sample: 1, Now: clock.now})
	root := tr.Stage("test.root")
	inner := tr.Stage("test.inner")
	leaf := tr.Stage("test.leaf")

	at := tr.Begin()
	r := at.StartSpan(root)
	clock.advance(time.Millisecond)
	in := at.StartSpan(inner)
	clock.advance(time.Millisecond)
	lf := at.StartSpan(leaf)
	clock.advance(time.Millisecond)
	at.EndSpan(lf)
	at.EndSpan(in)
	clock.advance(time.Millisecond)
	abandoned := at.StartSpan(inner)
	_ = abandoned // never ended: Finish must close it
	clock.advance(2 * time.Millisecond)
	at.EndSpan(r)
	tr.Finish(at)

	snaps := tr.Snapshots()
	if len(snaps) != 1 || len(snaps[0].Spans) != 4 {
		t.Fatalf("want 1 trace with 4 spans, got %+v", snaps)
	}
	sp := snaps[0].Spans
	if sp[0].Parent != -1 || sp[1].Parent != 0 || sp[2].Parent != 1 || sp[3].Parent != 0 {
		t.Fatalf("parent links wrong: %+v", sp)
	}
	if sp[0].Stage != "test.root" || sp[1].Stage != "test.inner" || sp[2].Stage != "test.leaf" {
		t.Fatalf("stage names wrong: %+v", sp)
	}
	rootEnd := sp[0].Start + sp[0].Dur
	for i := 1; i < len(sp); i++ {
		if sp[i].Start < sp[0].Start || sp[i].Start+sp[i].Dur > rootEnd {
			t.Fatalf("span %d [%v,%v] escapes root [%v,%v]", i,
				sp[i].Start, sp[i].Start+sp[i].Dur, sp[0].Start, rootEnd)
		}
	}
	// The abandoned span (root's unwound child, closed by EndSpan(r)'s
	// stack pop) ends exactly where the root ends.
	if got := sp[3].Start + sp[3].Dur; got != rootEnd {
		t.Fatalf("abandoned span ends at %vus, root at %vus", got, rootEnd)
	}
}

// TestTraceSpanOverflow: spans past the fixed capacity are dropped,
// counted, and surfaced on the snapshot — never reallocated.
func TestTraceSpanOverflow(t *testing.T) {
	reg := NewRegistry()
	clock := newFakeTraceClock()
	tr := NewTracer(reg, TraceConfig{Sample: 1, Now: clock.now})
	st := tr.Stage("test.stage")
	at := tr.Begin()
	for i := 0; i < maxTraceSpans+5; i++ {
		clock.spanOf(st, at, time.Microsecond)
	}
	tr.Finish(at)
	snaps := tr.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("want 1 trace, got %d", len(snaps))
	}
	if len(snaps[0].Spans) != maxTraceSpans || snaps[0].DroppedSpans != 5 {
		t.Fatalf("overflowed trace has %d spans, %d dropped; want %d and 5",
			len(snaps[0].Spans), snaps[0].DroppedSpans, maxTraceSpans)
	}
	if got := reg.CounterValue("dynaminer_trace_span_drops_total"); got != 5 {
		t.Fatalf("span drop counter = %v, want 5", got)
	}
}

// TestStageValidation: Stage interns idempotently, registers the folded
// histogram name, and panics on names the dynalint analyzer would reject.
func TestStageValidation(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TraceConfig{})
	a := tr.Stage("features.incremental")
	if b := tr.Stage("features.incremental"); b != a {
		t.Fatalf("re-interning returned %d, first intern %d", b, a)
	}
	if got := tr.StageName(a); got != "features.incremental" {
		t.Fatalf("StageName = %q", got)
	}
	tr.ObserveStage(a, 0.001)
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "dynaminer_stage_features_incremental_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatal("stage histogram dynaminer_stage_features_incremental_seconds not registered")
	}
	for _, bad := range []string{"", "nodot", "Has.Upper", "trailing.dot.", "double..dot", "9lead.seg", "has-dash.seg"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Stage(%q) did not panic", bad)
				}
			}()
			tr.Stage(bad)
		}()
	}
}

// TestWriteTraceEvents checks the Chrome trace-event export: a valid JSON
// object whose events carry microsecond timestamps on the trace's track.
func TestWriteTraceEvents(t *testing.T) {
	clock := newFakeTraceClock()
	tr := NewTracer(nil, TraceConfig{Sample: 1, Now: clock.now})
	root := tr.Stage("test.root")
	child := tr.Stage("test.child")
	at := tr.Begin()
	r := at.StartSpan(root)
	c := at.StartSpan(child)
	clock.advance(3 * time.Millisecond)
	at.EndSpan(c)
	at.EndSpan(r)
	tr.Finish(at)

	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace-event export is not JSON: %v\n%s", err, buf.Bytes())
	}
	if file.DisplayTimeUnit != "ms" || len(file.TraceEvents) != 2 {
		t.Fatalf("export shape wrong: unit=%q events=%d", file.DisplayTimeUnit, len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" || ev.TID != 1 {
			t.Fatalf("event not a complete event on track 1: %+v", ev)
		}
	}
	if file.TraceEvents[0].Name != "test.root" || file.TraceEvents[0].Dur != 3000 {
		t.Fatalf("root event wrong: %+v", file.TraceEvents[0])
	}
}

// TestTraceHandler exercises the /trace endpoint formats: trace-event
// JSON by default, flame text, id resolution, and the error statuses.
func TestTraceHandler(t *testing.T) {
	clock := newFakeTraceClock()
	tr := NewTracer(nil, TraceConfig{Sample: 1, Now: clock.now})
	st := tr.Stage("test.stage")
	at := tr.Begin()
	id := at.ID()
	clock.spanOf(st, at, 2*time.Millisecond)
	tr.Finish(at)
	h := TraceHandler(tr)

	get := func(target string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
		return w
	}

	w := get("/trace")
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if w.Code != 200 || json.Unmarshal(w.Body.Bytes(), &file) != nil || len(file.TraceEvents) != 1 {
		t.Fatalf("/trace default = %d %q", w.Code, w.Body.String())
	}

	w = get("/trace?format=flame")
	if w.Code != 200 || !strings.Contains(w.Body.String(), "traces kept: 1") ||
		!strings.Contains(w.Body.String(), "test.stage") {
		t.Fatalf("/trace?format=flame = %d %q", w.Code, w.Body.String())
	}

	w = get("/trace?id=" + itoa(id))
	var snap TraceSnapshot
	if w.Code != 200 || json.Unmarshal(w.Body.Bytes(), &snap) != nil || snap.ID != id {
		t.Fatalf("/trace?id=%d = %d %q", id, w.Code, w.Body.String())
	}

	if w = get("/trace?id=999999"); w.Code != 404 {
		t.Fatalf("/trace with unknown id = %d", w.Code)
	}
	if w = get("/trace?id=notanumber"); w.Code != 400 {
		t.Fatalf("/trace with junk id = %d", w.Code)
	}
	if w = get("/trace?format=weird"); w.Code != 400 {
		t.Fatalf("/trace with junk format = %d", w.Code)
	}

	w = httptest.NewRecorder()
	TraceHandler(nil).ServeHTTP(w, httptest.NewRequest("GET", "/trace", nil))
	if w.Code != 404 {
		t.Fatalf("nil-tracer /trace = %d, want 404", w.Code)
	}
}

func itoa(v uint64) string {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			return string(buf[i:])
		}
	}
}

// TestValidateSpanName documents the accepted grammar directly.
func TestValidateSpanName(t *testing.T) {
	for _, ok := range []string{"a.b", "features.rebuild", "proxy.upstream", "a1.b_2.c"} {
		if err := ValidateSpanName(ok); err != nil {
			t.Errorf("ValidateSpanName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "single", "A.b", "a.", ".b", "a..b", "a.b-c", "1a.b", "a.b c"} {
		if err := ValidateSpanName(bad); err == nil {
			t.Errorf("ValidateSpanName(%q) accepted", bad)
		}
	}
}
