package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Cell is one cache-line-padded counter stripe. Engine shards bind their
// own cell via Counter.NewCell, so concurrent shards never contend on a
// cache line, and a shard's own increments are readable back as the
// per-shard Stats view.
type Cell struct {
	n atomic.Int64
	// Pad the cell out to a cache line so independently allocated cells
	// that happen to land adjacently never false-share.
	_ [56]byte
}

// Inc adds 1 and returns the cell's new value.
func (c *Cell) Inc() int64 { return c.n.Add(1) }

// Add adds d and returns the cell's new value.
func (c *Cell) Add(d int64) int64 { return c.n.Add(d) }

// Value reads the cell.
func (c *Cell) Value() int64 { return c.n.Load() }

// Counter is a monotonically increasing metric, striped across cells.
// Inc/Add on the counter itself hit the default cell; hot concurrent
// writers take a private cell with NewCell. Value sums every cell.
type Counter struct {
	def Cell

	mu    sync.Mutex
	cells []*Cell // guarded by mu; extra stripes handed out by NewCell
}

func newCounter() *Counter { return &Counter{} }

// Inc increments the default cell.
func (c *Counter) Inc() { c.def.n.Add(1) }

// Add adds d to the default cell.
func (c *Counter) Add(d int64) { c.def.n.Add(d) }

// NewCell appends a fresh private stripe and returns it. Call once per
// writer at setup time, not on the hot path.
func (c *Counter) NewCell() *Cell {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell := &Cell{}
	c.cells = append(c.cells, cell)
	return cell
}

// Value returns the counter total: the default cell plus every stripe.
func (c *Counter) Value() int64 {
	total := c.def.n.Load()
	c.mu.Lock()
	cells := c.cells
	c.mu.Unlock()
	for _, cell := range cells {
		total += cell.n.Load()
	}
	return total
}

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value (seconds-valued runtime
// telemetry: GC pause quantiles, scheduler latency), stored as float64
// bits in an atomic word.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a one-label gauge family. Children are created lazily by
// With — once per label value, off the hot path — and observed through
// the returned *Gauge with no further lookups.
type GaugeVec struct {
	label string

	mu       sync.Mutex
	children map[string]*Gauge // guarded by mu; label value -> child
}

// With returns the child gauge for the label value, creating it on first
// use. Callers should cache the result; With takes a lock.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

// Delete drops the child for the label value (e.g. a circuit breaker
// whose host healed and whose bookkeeping was released).
func (v *GaugeVec) Delete(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, value)
}

// Len returns the number of live children.
func (v *GaugeVec) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.children)
}

// LatencyBuckets is the default histogram bucket layout for latency
// metrics: 10µs to ~40s in quadrupling steps, upper bounds in seconds.
var LatencyBuckets = []float64{
	10e-6, 40e-6, 160e-6, 640e-6, 2.56e-3, 10.24e-3, 40.96e-3,
	163.84e-3, 655.36e-3, 2.62144, 10.48576, 41.94304,
}

// Histogram is a fixed-bucket histogram. The bucket layout is resolved at
// registration; Observe performs a short bounded scan plus atomic adds
// and allocates nothing.
type Histogram struct {
	bounds []float64      // inclusive upper bounds, ascending
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound
// (Prometheus `le` semantics), excluding the implicit +Inf bucket whose
// cumulative count is Count.
func (h *Histogram) Buckets() ([]float64, []int64) {
	cum := make([]int64, len(h.bounds))
	var running int64
	for i := range h.bounds {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return append([]float64(nil), h.bounds...), cum
}

// sameBounds reports whether two bucket layouts are identical.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
