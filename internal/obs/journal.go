package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// AlertRecord is one line of the alert provenance journal: everything the
// classifier knew at the moment it raised an alert, so the decision can
// be replayed offline. Features is the exact 37-slot vector the forest
// scored and Score the exact ensemble output — JSON encodes finite
// float64s losslessly, so a decoded record is bit-identical to the
// decision-time values.
type AlertRecord struct {
	Time      time.Time `json:"time"`
	Client    string    `json:"client"`
	ClusterID int       `json:"cluster_id"`

	// The arming clue: the redirect chain + payload download that opened
	// the watch this alert came from.
	ClueHost      string `json:"clue_host"`
	CluePayload   string `json:"clue_payload"`
	ClueRedirects int    `json:"clue_redirects"`

	// WCG shape at decision time.
	WCGNodes         int    `json:"wcg_nodes"`
	WCGEdges         int    `json:"wcg_edges"`
	WCGStructVersion uint64 `json:"wcg_struct_version"`
	// Incremental is false when this decision came from a from-scratch
	// rebuild (DisableIncremental or a quarantine pin).
	Incremental bool `json:"incremental"`

	// The decision itself.
	Features  []float64 `json:"features"`
	Score     float64   `json:"score"`
	Threshold float64   `json:"threshold"`
	// Votes/Trees are the per-tree tally when the scorer exposes one
	// (ml.Forest does): Votes trees of Trees put the infection class
	// above 0.5.
	Votes int `json:"votes,omitempty"`
	Trees int `json:"trees,omitempty"`

	// Degraded-mode flags active at decision time.
	Degraded    bool `json:"degraded,omitempty"`
	Quarantined bool `json:"quarantined,omitempty"`
}

// Journal is an append-only JSONL sink for AlertRecords. Append never
// panics and never blocks detection on malformed records: encode or
// write failures are counted and reported, not thrown.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer // guarded by mu
	closer io.Closer // guarded by mu; nil for caller-owned writers

	writes Cell // records appended successfully
	drops  Cell // records lost to encode/write errors or panics
}

// NewJournal opens (creating, append-mode) a JSONL journal file.
func NewJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	return &Journal{w: f, closer: f}, nil
}

// NewJournalWriter wraps a caller-owned writer (tests, buffers). Close
// does not close the underlying writer.
func NewJournalWriter(w io.Writer) *Journal { return &Journal{w: w} }

// Append writes one record as a JSON line. It is safe for concurrent use
// and guaranteed not to panic: a panicking or failing writer costs the
// record (counted in Drops), never the detection pipeline.
func (j *Journal) Append(rec AlertRecord) (err error) {
	if j == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			j.drops.Inc()
			err = fmt.Errorf("obs: journal append panicked: %v", r)
		}
	}()
	line, err := json.Marshal(rec)
	if err != nil {
		j.drops.Inc()
		return fmt.Errorf("obs: journal encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		j.drops.Inc()
		return fmt.Errorf("obs: journal is closed")
	}
	if _, err := j.w.Write(line); err != nil {
		j.drops.Inc()
		return fmt.Errorf("obs: journal write: %w", err)
	}
	j.writes.Inc()
	return nil
}

// Writes returns how many records were appended successfully.
func (j *Journal) Writes() int64 {
	if j == nil {
		return 0
	}
	return j.writes.Value()
}

// Drops returns how many records were lost to errors or panics.
func (j *Journal) Drops() int64 {
	if j == nil {
		return 0
	}
	return j.drops.Value()
}

// Close flushes nothing (writes are unbuffered) and closes the file when
// the journal owns one. Idempotent; Append after Close reports an error.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	c := j.closer
	j.w, j.closer = nil, nil
	if c != nil {
		return c.Close()
	}
	return nil
}

// ReadJournal decodes a JSONL journal stream, the inverse of Append.
func ReadJournal(r io.Reader) ([]AlertRecord, error) {
	var out []AlertRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec AlertRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return out, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// ReadJournalFile decodes a journal file by path.
func ReadJournalFile(path string) ([]AlertRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
