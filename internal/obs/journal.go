package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// AlertRecord is one line of the alert provenance journal: everything the
// classifier knew at the moment it raised an alert, so the decision can
// be replayed offline. Features is the exact 37-slot vector the forest
// scored and Score the exact ensemble output — JSON encodes finite
// float64s losslessly, so a decoded record is bit-identical to the
// decision-time values.
type AlertRecord struct {
	Time      time.Time `json:"time"`
	Client    string    `json:"client"`
	ClusterID int       `json:"cluster_id"`

	// The arming clue: the redirect chain + payload download that opened
	// the watch this alert came from.
	ClueHost      string `json:"clue_host"`
	CluePayload   string `json:"clue_payload"`
	ClueRedirects int    `json:"clue_redirects"`

	// WCG shape at decision time.
	WCGNodes         int    `json:"wcg_nodes"`
	WCGEdges         int    `json:"wcg_edges"`
	WCGStructVersion uint64 `json:"wcg_struct_version"`
	// Incremental is false when this decision came from a from-scratch
	// rebuild (DisableIncremental or a quarantine pin).
	Incremental bool `json:"incremental"`

	// ModelVersion identifies the exact forest that scored this alert
	// ("g<generation>-<blob crc>", see detector.ModelVersion): the watch's
	// pinned model, which may differ from the serving model after a
	// hot-swap. Re-scoring Features with that forest reproduces Score
	// bit-for-bit across processes and machines.
	ModelVersion string `json:"model_version,omitempty"`

	// The decision itself.
	Features  []float64 `json:"features"`
	Score     float64   `json:"score"`
	Threshold float64   `json:"threshold"`
	// Votes/Trees are the per-tree tally when the scorer exposes one
	// (ml.Forest does): Votes trees of Trees put the infection class
	// above 0.5.
	Votes int `json:"votes,omitempty"`
	Trees int `json:"trees,omitempty"`

	// Degraded-mode flags active at decision time.
	Degraded    bool `json:"degraded,omitempty"`
	Quarantined bool `json:"quarantined,omitempty"`

	// TraceID links this alert to its captured span tree: alert-raising
	// transactions are always-keep promoted into the trace ring, so the
	// id resolves via Tracer.Find or the /trace?id= admin endpoint while
	// the trace is in the ring. Zero when tracing is disabled.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// JournalConfig tunes journal durability and rotation. The zero value
// preserves the historical behavior: every record is one unbuffered
// write (the OS has it even on a crash), no fsync is forced, and the
// file grows without bound.
type JournalConfig struct {
	// FsyncEvery forces the journal to stable storage after every N
	// successful appends (1 = every record). Zero disables count-based
	// fsync.
	FsyncEvery int
	// FsyncInterval forces a sync on the first append at least this long
	// after the previous one, bounding how much journal a power loss can
	// take. Zero disables interval-based fsync.
	FsyncInterval time.Duration
	// MaxBytes rotates the journal once the current file exceeds this
	// size: the file is synced and renamed to "<path>.<N>" (N increasing
	// from 1) and a fresh file takes its place. Zero disables rotation.
	MaxBytes int64
	// Now supplies time for interval-based fsync; nil selects the wall
	// clock.
	Now func() time.Time
}

// Journal is an append-only JSONL sink for AlertRecords. Append never
// panics and never blocks detection on malformed records: encode or
// write failures are counted and reported, not thrown. Records are
// written unbuffered (one line, one write), so a crash can tear at most
// the final record — which ReadJournal tolerates — and the configured
// fsync policy bounds what a power loss can lose.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer // guarded by mu
	closer io.Closer // guarded by mu; nil for caller-owned writers

	// Rotation and fsync state; all guarded by mu. path is empty for
	// caller-owned writers, which never rotate.
	path      string
	cfg       JournalConfig
	now       func() time.Time
	size      int64
	sinceSync int
	lastSync  time.Time
	seq       int // next rotation suffix

	writes       Cell // records appended successfully
	drops        Cell // records lost to encode/write errors or panics
	syncs        Cell // fsyncs pushed to stable storage
	syncFailures Cell // fsyncs the sink refused
	rotations    Cell // completed file rotations

	// Registry views published by PublishMetrics; nil until then. All
	// guarded by mu (updated on the append path, which already holds it).
	pubReg       *Registry
	pubRotations *Counter
	pubSize      *Gauge
}

// NewJournal opens (creating, append-mode) a JSONL journal file with the
// zero JournalConfig (write-through, no fsync, no rotation).
func NewJournal(path string) (*Journal, error) {
	return NewJournalWith(path, JournalConfig{})
}

// NewJournalWith opens a JSONL journal file with an explicit durability
// and rotation policy.
func NewJournalWith(path string, cfg JournalConfig) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	j := &Journal{w: f, closer: f, path: path, cfg: cfg, now: now}
	if st, err := f.Stat(); err == nil {
		j.size = st.Size()
	}
	if cfg.MaxBytes > 0 {
		j.seq = nextRotationSeq(path)
	}
	j.lastSync = j.now()
	return j, nil
}

// NewJournalWriter wraps a caller-owned writer (tests, buffers) with the
// zero config. Close does not close the underlying writer.
func NewJournalWriter(w io.Writer) *Journal {
	return NewJournalWriterWith(w, JournalConfig{})
}

// NewJournalWriterWith wraps a caller-owned writer with an explicit
// config. Fsync policies apply when the writer exposes Sync() error
// (os.File does); rotation never applies to caller-owned writers.
func NewJournalWriterWith(w io.Writer, cfg JournalConfig) *Journal {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	j := &Journal{w: w, cfg: cfg, now: now}
	j.lastSync = j.now()
	return j
}

// nextRotationSeq returns the first unused "<path>.<N>" suffix, so a
// reopened journal continues its rotation sequence instead of clobbering
// history.
func nextRotationSeq(path string) int {
	seq := 1
	for {
		if _, err := os.Stat(fmt.Sprintf("%s.%d", path, seq)); err != nil {
			return seq
		}
		seq++
	}
}

// Append writes one record as a JSON line. It is safe for concurrent use
// and guaranteed not to panic: a panicking or failing writer costs the
// record (counted in Drops), never the detection pipeline.
func (j *Journal) Append(rec AlertRecord) (err error) {
	if j == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			j.drops.Inc()
			err = fmt.Errorf("obs: journal append panicked: %v", r)
		}
	}()
	line, err := json.Marshal(rec)
	if err != nil {
		j.drops.Inc()
		return fmt.Errorf("obs: journal encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		j.drops.Inc()
		return fmt.Errorf("obs: journal is closed")
	}
	if _, err := j.w.Write(line); err != nil {
		j.drops.Inc()
		return fmt.Errorf("obs: journal write: %w", err)
	}
	j.writes.Inc()
	j.size += int64(len(line))
	j.sinceSync++
	j.maybeSyncLocked()
	j.maybeRotateLocked()
	if j.pubSize != nil {
		j.pubSize.Set(j.size)
	}
	return nil
}

// PublishMetrics registers rotation observability on a registry:
// dynaminer_journal_rotations_total (completed rotations, backfilled
// with any that already happened) and dynaminer_journal_size_bytes (the
// current file size), so rotation behavior is visible before the disk
// fills. Idempotent per registry; safe to call from every engine shard
// sharing the journal.
func (j *Journal) PublishMetrics(reg *Registry) {
	if j == nil || reg == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pubReg == reg {
		return
	}
	j.pubReg = reg
	j.pubRotations = reg.Counter("dynaminer_journal_rotations_total", "completed journal file rotations")
	j.pubSize = reg.Gauge("dynaminer_journal_size_bytes", "current journal file size")
	if n := j.rotations.Value(); n > 0 {
		j.pubRotations.Add(n)
	}
	j.pubSize.Set(j.size)
}

// syncer is the optional stable-storage hook a journal sink can expose.
type syncer interface{ Sync() error }

// maybeSyncLocked applies the configured fsync policy after a successful
// append; the caller holds mu.
func (j *Journal) maybeSyncLocked() {
	due := j.cfg.FsyncEvery > 0 && j.sinceSync >= j.cfg.FsyncEvery
	if !due && j.cfg.FsyncInterval > 0 && j.now().Sub(j.lastSync) >= j.cfg.FsyncInterval {
		due = true
	}
	if due {
		_ = j.syncLocked()
	}
}

// syncLocked pushes written records to stable storage when the sink can;
// a refusal is counted, never propagated to the appender — the bytes are
// already with the OS and the journal keeps appending. The caller holds
// mu.
func (j *Journal) syncLocked() error {
	j.sinceSync = 0
	j.lastSync = j.now()
	s, ok := j.w.(syncer)
	if !ok {
		return nil
	}
	if err := s.Sync(); err != nil {
		j.syncFailures.Inc()
		return fmt.Errorf("obs: journal sync: %w", err)
	}
	j.syncs.Inc()
	return nil
}

// maybeRotateLocked rotates the journal once the current file exceeds
// MaxBytes: sync, rename to "<path>.<N>", open a fresh file. If the fresh
// file cannot be opened the journal keeps appending to the old handle —
// records land in the rotated file, misplaced but never lost. The caller
// holds mu.
func (j *Journal) maybeRotateLocked() {
	if j.cfg.MaxBytes <= 0 || j.size < j.cfg.MaxBytes || j.path == "" || j.closer == nil {
		return
	}
	old, ok := j.closer.(*os.File)
	if !ok {
		return
	}
	_ = old.Sync()
	if err := os.Rename(j.path, fmt.Sprintf("%s.%d", j.path, j.seq)); err != nil {
		j.size = 0 // stop retrying every append; the file keeps growing in place
		return
	}
	fresh, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The old handle now points at the rotated file; keep writing there.
		j.size = 0
		return
	}
	_ = old.Close()
	j.w, j.closer = fresh, fresh
	j.seq++
	j.size = 0
	j.rotations.Inc()
	if j.pubRotations != nil {
		j.pubRotations.Inc()
	}
}

// Sync forces everything appended so far to stable storage (when the sink
// supports it) and reports the sink's verdict; graceful drains call this
// before Close so no alert rides only in the page cache.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return nil
	}
	return j.syncLocked()
}

// Writes returns how many records were appended successfully.
func (j *Journal) Writes() int64 {
	if j == nil {
		return 0
	}
	return j.writes.Value()
}

// Drops returns how many records were lost to errors or panics.
func (j *Journal) Drops() int64 {
	if j == nil {
		return 0
	}
	return j.drops.Value()
}

// Syncs returns how many fsyncs reached stable storage.
func (j *Journal) Syncs() int64 {
	if j == nil {
		return 0
	}
	return j.syncs.Value()
}

// SyncFailures returns how many fsyncs the sink refused.
func (j *Journal) SyncFailures() int64 {
	if j == nil {
		return 0
	}
	return j.syncFailures.Value()
}

// Rotations returns how many completed file rotations happened.
func (j *Journal) Rotations() int64 {
	if j == nil {
		return 0
	}
	return j.rotations.Value()
}

// Close syncs the file to stable storage and closes it when the journal
// owns one. Idempotent; Append after Close reports an error.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	c := j.closer
	if j.w != nil {
		_ = j.syncLocked()
	}
	j.w, j.closer = nil, nil
	if c != nil {
		return c.Close()
	}
	return nil
}

// ReadJournal decodes a JSONL journal stream, the inverse of Append. A
// damaged final record — the torn write of a crash or power loss — is
// dropped, not an error: Append writes each record with one unbuffered
// write, so only the tail can legitimately tear. Damage followed by
// further records is corruption, and still errors.
func ReadJournal(r io.Reader) ([]AlertRecord, error) {
	var out []AlertRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	tornLine, tornErr := 0, error(nil)
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if tornErr != nil {
			return out, fmt.Errorf("obs: journal line %d: %w", tornLine, tornErr)
		}
		var rec AlertRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			tornLine, tornErr = line, err
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// ReadJournalFile decodes a journal file by path.
func ReadJournalFile(path string) ([]AlertRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
