package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Admin is the opt-in observability HTTP server. Nothing in this file
// runs unless StartAdmin is called: no listener, no goroutine, no
// DefaultServeMux registration (pprof handlers are mounted on a private
// mux precisely so importing this package has no side effects).
type Admin struct {
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
	done      chan struct{}
}

// StartAdmin binds addr and serves /metrics (Prometheus text format,
// concatenating every registry in order), /healthz, /snapshot (JSON
// metric dump for the CLI), and /debug/pprof/. The serve loop runs in a
// recover-guarded goroutine; Close shuts the listener down and waits for
// the loop to exit.
func StartAdmin(addr string, regs ...*Registry) (*Admin, error) {
	return StartAdminHandlers(addr, nil, regs...)
}

// StartAdminHandlers is StartAdmin plus caller-supplied endpoints — the
// hook lifecycle control planes (model reload, checkpoint triggers) use
// to ride the same listener as /metrics. Extra patterns that collide
// with the built-in endpoints are skipped: the observability surface
// cannot be shadowed.
func StartAdminHandlers(addr string, extra map[string]http.Handler, regs ...*Registry) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		var snap []MetricSnapshot
		for _, r := range regs {
			snap = append(snap, r.Snapshot()...)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	// pprof goes on the private mux, not http.DefaultServeMux, so the
	// profiler exists only while an admin server is running.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	builtin := map[string]bool{
		"/metrics": true, "/healthz": true, "/snapshot": true, "/debug/pprof/": true,
		"/debug/pprof/cmdline": true, "/debug/pprof/profile": true,
		"/debug/pprof/symbol": true, "/debug/pprof/trace": true,
	}
	patterns := make([]string, 0, len(extra))
	for p := range extra {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns) // deterministic mount order
	for _, p := range patterns {
		if p == "" || builtin[p] || extra[p] == nil {
			continue
		}
		mux.Handle(p, extra[p])
	}

	a := &Admin{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		defer func() {
			// Last-resort guard: a panicking serve loop must not take the
			// process down (http.Server already isolates handler panics).
			_ = recover()
		}()
		_ = a.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server and waits for the serve goroutine to
// exit. Idempotent.
func (a *Admin) Close() error {
	var err error
	a.closeOnce.Do(func() {
		err = a.srv.Close()
		<-a.done
	})
	return err
}
