package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Admin is the opt-in observability HTTP server. Nothing in this file
// runs unless StartAdmin is called: no listener, no goroutine, no
// DefaultServeMux registration (pprof handlers are mounted on a private
// mux precisely so importing this package has no side effects).
type Admin struct {
	ln        net.Listener
	srv       *http.Server
	collector *RuntimeCollector

	closeOnce sync.Once
	done      chan struct{}
}

// AdminOptions extends the admin surface beyond the metric registries.
type AdminOptions struct {
	// Extra mounts caller-supplied endpoints (model reload, checkpoint
	// triggers) on the same listener; patterns colliding with built-in
	// endpoints are skipped — the observability surface cannot be
	// shadowed.
	Extra map[string]http.Handler
	// Health, when set, turns /healthz into a readiness report: a JSON
	// body with per-condition booleans, HTTP 503 while any condition
	// holds. Nil preserves the legacy unconditional plain-text "ok".
	Health HealthFunc
	// Tracer, when set, mounts the /trace endpoint (Chrome trace-event
	// JSON, ?format=flame, ?id=N lookup).
	Tracer *Tracer
	// RuntimeInterval tunes the runtime health collector ticker that runs
	// for the admin server's lifetime; 0 selects the 10s default.
	RuntimeInterval time.Duration
}

// StartAdmin binds addr and serves /metrics (Prometheus text format,
// concatenating every registry in order), /healthz, /snapshot (JSON
// metric dump for the CLI), and /debug/pprof/. The serve loop runs in a
// recover-guarded goroutine; Close shuts the listener down and waits for
// the loop to exit.
func StartAdmin(addr string, regs ...*Registry) (*Admin, error) {
	return StartAdminWith(addr, AdminOptions{}, regs...)
}

// StartAdminHandlers is StartAdmin plus caller-supplied endpoints — the
// hook lifecycle control planes (model reload, checkpoint triggers) use
// to ride the same listener as /metrics.
func StartAdminHandlers(addr string, extra map[string]http.Handler, regs ...*Registry) (*Admin, error) {
	return StartAdminWith(addr, AdminOptions{Extra: extra}, regs...)
}

// StartAdminWith is the full-surface variant: extra endpoints, a
// readiness source for /healthz, and a tracer for /trace. While the
// admin server runs, a runtime health collector refreshes process gauges
// (goroutines, heap, GC pause, scheduler latency) on the first registry.
func StartAdminWith(addr string, opts AdminOptions, regs ...*Registry) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
	mux.Handle("/healthz", HealthzHandler(opts.Health))
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		var snap []MetricSnapshot
		for _, r := range regs {
			snap = append(snap, r.Snapshot()...)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	builtin := map[string]bool{
		"/metrics": true, "/healthz": true, "/snapshot": true, "/debug/pprof/": true,
		"/debug/pprof/cmdline": true, "/debug/pprof/profile": true,
		"/debug/pprof/symbol": true, "/debug/pprof/trace": true,
	}
	if opts.Tracer != nil {
		mux.Handle("/trace", TraceHandler(opts.Tracer))
		builtin["/trace"] = true
	}
	// pprof goes on the private mux, not http.DefaultServeMux, so the
	// profiler exists only while an admin server is running.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	patterns := make([]string, 0, len(opts.Extra))
	for p := range opts.Extra {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns) // deterministic mount order
	for _, p := range patterns {
		if p == "" || builtin[p] || opts.Extra[p] == nil {
			continue
		}
		mux.Handle(p, opts.Extra[p])
	}

	a := &Admin{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	if len(regs) > 0 && regs[0] != nil {
		a.collector = StartRuntimeCollector(regs[0], opts.RuntimeInterval)
	}
	go func() {
		defer close(a.done)
		defer func() {
			// Last-resort guard: a panicking serve loop must not take the
			// process down (http.Server already isolates handler panics).
			_ = recover()
		}()
		_ = a.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return a, nil
}

// HealthzHandler serves the /healthz contract: with a health source, a
// JSON readiness report (Ready derived as "no condition set", HTTP 503
// otherwise); without one, the legacy unconditional plain-text "ok".
func HealthzHandler(health HealthFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if health == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
		st := health()
		st.Ready = !st.Degraded && !st.Quarantined && !st.Shedding
		w.Header().Set("Content-Type", "application/json")
		if !st.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		_ = enc.Encode(st)
	})
}

// Addr returns the bound listen address (useful with ":0").
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server and its runtime collector, waiting for
// both to exit. Idempotent.
func (a *Admin) Close() error {
	var err error
	a.closeOnce.Do(func() {
		if a.collector != nil {
			a.collector.Close()
		}
		err = a.srv.Close()
		<-a.done
	})
	return err
}
