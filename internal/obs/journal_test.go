package obs

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func sampleRecord(i int) AlertRecord {
	features := make([]float64, 37)
	for j := range features {
		// Awkward floats on purpose: the round-trip must be bit-exact.
		features[j] = float64(j+i) / 7.0 * math.Pi
	}
	return AlertRecord{
		Time:             time.Date(2026, 8, 5, 10, 30, 0, int(i)*1000, time.UTC),
		Client:           "10.0.0.7",
		ClusterID:        41 + i,
		ClueHost:         "payload.example",
		CluePayload:      "EXE",
		ClueRedirects:    3,
		WCGNodes:         12,
		WCGEdges:         30,
		WCGStructVersion: 9,
		Incremental:      i%2 == 0,
		Features:         features,
		Score:            0.625 + float64(i)/113.0,
		Threshold:        0.5,
		Votes:            21,
		Trees:            30,
		Degraded:         i == 1,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournalWriter(&buf)
	want := []AlertRecord{sampleRecord(0), sampleRecord(1), sampleRecord(2)}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if j.Writes() != 3 || j.Drops() != 0 {
		t.Fatalf("writes=%d drops=%d, want 3/0", j.Writes(), j.Drops())
	}
	got, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journal round-trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Bit-exactness of the decision values, explicitly.
	for i := range want {
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("record %d: score bits changed in round-trip", i)
		}
		for k := range want[i].Features {
			if math.Float64bits(got[i].Features[k]) != math.Float64bits(want[i].Features[k]) {
				t.Fatalf("record %d feature %d: bits changed in round-trip", i, k)
			}
		}
	}
}

func TestJournalFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(sampleRecord(5)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Append-mode reopen must extend, not truncate.
	j2, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(sampleRecord(6)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ClusterID != 46 || recs[1].ClusterID != 47 {
		t.Fatalf("file journal contents wrong: %+v", recs)
	}
}

type panicWriter struct{}

func (panicWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

type explodingWriter struct{}

func (explodingWriter) Write([]byte) (int, error) { panic("disk on fire") }

func TestJournalAppendNeverPanics(t *testing.T) {
	for name, j := range map[string]*Journal{
		"nil journal":     nil,
		"failing writer":  NewJournalWriter(panicWriter{}),
		"panicky writer":  NewJournalWriter(explodingWriter{}),
		"closed journal":  func() *Journal { j := NewJournalWriter(&bytes.Buffer{}); j.Close(); return j }(),
		"unencodable rec": NewJournalWriter(&bytes.Buffer{}),
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Append panicked: %v", name, r)
				}
			}()
			rec := sampleRecord(0)
			if name == "unencodable rec" {
				rec.Score = math.NaN() // json.Marshal refuses NaN
			}
			err := j.Append(rec)
			if j != nil && name != "nil journal" && err == nil {
				t.Errorf("%s: expected an error", name)
			}
			if j != nil && err != nil && j.Drops() == 0 {
				t.Errorf("%s: drop not counted", name)
			}
		}()
	}
}

func TestReadJournalRejectsGarbage(t *testing.T) {
	// A damaged line with more records after it is corruption, not a torn
	// tail: Append's single-write discipline can only tear the final line.
	in := "{\"time\":\"2026-08-05T00:00:00Z\"}\nnot json\n{\"time\":\"2026-08-05T00:00:01Z\"}\n"
	if _, err := ReadJournal(bytes.NewBufferString(in)); err == nil {
		t.Fatal("ReadJournal accepted a mid-file non-JSON line")
	}
}

func TestReadJournalToleratesTornTail(t *testing.T) {
	// A crash or power loss can leave a half-written final record; the
	// reader must surface every complete record and drop only the tail.
	in := "{\"time\":\"2026-08-05T00:00:00Z\"}\n{\"time\":\"2026-08-05T00:00:01Z\"}\n{\"time\":\"2026-08-05T00:0"
	recs, err := ReadJournal(bytes.NewBufferString(in))
	if err != nil {
		t.Fatalf("torn tail reported as corruption: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want the 2 complete ones", len(recs))
	}
	// Trailing blank lines after the tear (e.g. a torn write of just the
	// newline) must not promote the tear into corruption.
	in = "{\"time\":\"2026-08-05T00:00:00Z\"}\n{\"bad\n\n"
	if recs, err = ReadJournal(bytes.NewBufferString(in)); err != nil || len(recs) != 1 {
		t.Fatalf("torn tail + blank line: recs=%d err=%v, want 1 record, nil error", len(recs), err)
	}
}
