package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// HealthStatus is the /healthz readiness report: per-condition booleans
// describing why a node is (or is not) ready to take traffic, plus the
// serving model generation. The conditions map onto the engine's
// degraded-mode machinery: Degraded means the latency-budget EWMA is
// over budget, Quarantined means at least one cluster carries a
// quarantine strike, Shedding means the watch cap is saturated and new
// watches are being shed.
type HealthStatus struct {
	Ready        bool   `json:"ready"`
	Degraded     bool   `json:"degraded"`
	Quarantined  bool   `json:"quarantined"`
	Shedding     bool   `json:"shedding"`
	ModelVersion string `json:"model_version,omitempty"`
}

// HealthFunc supplies the current readiness conditions; the admin server
// calls it on every /healthz request. Ready is derived by the endpoint
// (no condition set), so sources only report conditions.
type HealthFunc func() HealthStatus

// runtimeSamples are the runtime/metrics series the health collector
// publishes. Histogram-valued series surface as quantile gauges.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// RuntimeCollector publishes process health telemetry — goroutine count,
// live heap bytes, GC cycles, GC pause and scheduler latency quantiles —
// as registry gauges, refreshed by a recover-guarded background ticker.
// It is the "is the process itself healthy" counterpart to the pipeline
// stage histograms.
type RuntimeCollector struct {
	goroutines *Gauge
	heapBytes  *Gauge
	gcCycles   *Gauge
	gcPauseP99 *FloatGauge
	schedP99   *FloatGauge

	samples []metrics.Sample

	mu        sync.Mutex // serializes Collect (samples reuse)
	closeOnce sync.Once
	started   bool // set before the ticker goroutine launches
	stop      chan struct{}
	done      chan struct{}
}

// NewRuntimeCollector registers the runtime gauges on reg and performs an
// initial collection; it does not start the ticker (StartRuntimeCollector
// does).
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	c := &RuntimeCollector{
		goroutines: reg.Gauge("dynaminer_runtime_goroutines_total", "live goroutines in the process"),
		heapBytes:  reg.Gauge("dynaminer_runtime_heap_bytes", "bytes of live heap objects"),
		gcCycles:   reg.Gauge("dynaminer_runtime_gc_cycles_total", "completed GC cycles"),
		gcPauseP99: reg.FloatGauge("dynaminer_runtime_gc_pause_p99_seconds", "p99 stop-the-world GC pause"),
		schedP99:   reg.FloatGauge("dynaminer_runtime_sched_latency_p99_seconds", "p99 goroutine scheduling latency"),
		samples:    make([]metrics.Sample, len(runtimeSamples)),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for i, name := range runtimeSamples {
		c.samples[i].Name = name
	}
	c.Collect()
	return c
}

// Collect reads runtime/metrics once and refreshes every gauge. Safe for
// concurrent use; cheap enough for a ticker or a test to call directly.
func (c *RuntimeCollector) Collect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for i, name := range runtimeSamples {
		s := &c.samples[i]
		switch name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				c.goroutines.Set(int64(s.Value.Uint64()))
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				c.heapBytes.Set(int64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				c.gcCycles.Set(int64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				c.gcPauseP99.Set(histogramQuantile(s.Value.Float64Histogram(), 0.99))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				c.schedP99.Set(histogramQuantile(s.Value.Float64Histogram(), 0.99))
			}
		}
	}
}

// StartRuntimeCollector builds a collector on reg and refreshes it every
// interval (0 selects 10s) until Close. The ticker goroutine is
// recover-guarded: a panicking collection stops telemetry, never the
// process.
func StartRuntimeCollector(reg *Registry, interval time.Duration) *RuntimeCollector {
	c := NewRuntimeCollector(reg)
	if interval <= 0 {
		interval = 10 * time.Second
	}
	c.started = true
	go func() {
		defer close(c.done)
		defer func() {
			// Telemetry must never take the serving process down.
			_ = recover()
		}()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Collect()
			}
		}
	}()
	return c
}

// Close stops the ticker goroutine and waits for it to exit. Idempotent;
// harmless on a collector that was never started.
func (c *RuntimeCollector) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		if c.started {
			<-c.done
		}
	})
}

// histogramQuantile approximates quantile q from a runtime/metrics
// Float64Histogram using each bucket's upper bound (the conservative
// side). Returns 0 for an empty histogram.
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > target {
			// Buckets[i+1] is bucket i's upper bound; the last bucket's
			// bound may be +Inf — fall back to its finite lower bound.
			hi := h.Buckets[i+1]
			if hi > 1e18 || hi != hi { // +Inf or NaN guard
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
