package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"
)

func adminGet(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("dynaminer_test_events_total", "events").Add(11)
	r.Histogram("dynaminer_test_lat_seconds", "latency", LatencyBuckets).Observe(0.02)

	a, err := StartAdmin("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	code, body := adminGet(t, a.Addr(), "/healthz")
	if code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = adminGet(t, a.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	fams, err := ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	if got := fams["dynaminer_test_events_total"].Samples["dynaminer_test_events_total"]; got != 11 {
		t.Fatalf("/metrics counter = %g, want 11", got)
	}

	code, body = adminGet(t, a.Addr(), "/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot = %d", code)
	}
	var snap []MetricSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v\n%s", err, body)
	}
	// The two metrics registered above plus the five runtime health gauges
	// the admin server's collector registers on the first registry.
	if len(snap) != 7 {
		t.Fatalf("/snapshot has %d metrics, want 7", len(snap))
	}
	names := make(map[string]bool, len(snap))
	for _, s := range snap {
		names[s.Name] = true
	}
	for _, want := range []string{"dynaminer_runtime_goroutines_total", "dynaminer_runtime_heap_bytes",
		"dynaminer_runtime_gc_cycles_total", "dynaminer_runtime_gc_pause_p99_seconds",
		"dynaminer_runtime_sched_latency_p99_seconds"} {
		if !names[want] {
			t.Fatalf("/snapshot missing runtime gauge %s", want)
		}
	}

	code, _ = adminGet(t, a.Addr(), "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestAdminCloseIdempotentAndReleasesPort(t *testing.T) {
	a, err := StartAdmin("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The port must be re-bindable after Close.
	b, err := StartAdmin(addr, NewRegistry())
	if err != nil {
		t.Fatalf("rebind %s after Close: %v", addr, err)
	}
	b.Close()
}

// TestNoGoroutineWithoutStartAdmin pins the opt-in guarantee: merely
// using registries and metrics must not spin up server goroutines.
func TestNoGoroutineWithoutStartAdmin(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRegistry()
	r.Counter("quiet_total", "no servers here").Inc()
	r.Histogram("quiet_seconds", "still none", LatencyBuckets).Observe(1)
	time.Sleep(10 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before {
		t.Fatalf("metric use grew goroutines %d -> %d without StartAdmin", before, after)
	}
}
