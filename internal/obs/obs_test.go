package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestValidateMetricName(t *testing.T) {
	good := []string{
		"dynaminer_detector_transactions_total",
		"a_total",
		"x9_seconds",
		"dynaminer_proxy_relay_bytes",
	}
	for _, name := range good {
		if err := ValidateMetricName(name); err != nil {
			t.Errorf("ValidateMetricName(%q) = %v, want nil", name, err)
		}
	}
	bad := []string{
		"",
		"_total",              // no stem
		"Total_total",         // upper case
		"9lives_total",        // leading digit
		"dyna-miner_total",    // dash
		"dynaminer_requests",  // no unit suffix
		"dynaminer_ms_millis", // unknown unit
	}
	for _, name := range bad {
		if err := ValidateMetricName(name); err == nil {
			t.Errorf("ValidateMetricName(%q) = nil, want error", name)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("events_total", "help")
	c2 := r.Counter("events_total", "help")
	if c1 != c2 {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	h1 := r.Histogram("lat_seconds", "help", LatencyBuckets)
	h2 := r.Histogram("lat_seconds", "help", LatencyBuckets)
	if h1 != h2 {
		t.Fatal("re-registering the same histogram returned a different instance")
	}
	v1 := r.GaugeVec("breaker_state_total", "help", "host")
	v2 := r.GaugeVec("breaker_state_total", "help", "host")
	if v1 != v2 {
		t.Fatal("re-registering the same gauge vec returned a different instance")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("events_total", "help")
	mustPanic("kind collision", func() { r.Gauge("events_total", "help") })
	mustPanic("bad name", func() { r.Counter("Events", "help") })
	r.Histogram("lat_seconds", "help", LatencyBuckets)
	mustPanic("bounds mismatch", func() { r.Histogram("lat_seconds", "help", []float64{1, 2}) })
	r.GaugeVec("state_total", "help", "host")
	mustPanic("label mismatch", func() { r.GaugeVec("state_total", "help", "shard") })
	mustPanic("descending bounds", func() { r.Histogram("bad_seconds", "help", []float64{2, 1}) })
}

func TestCounterCellsAggregate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx_total", "help")
	c.Inc()
	c.Add(4)
	a := c.NewCell()
	b := c.NewCell()
	a.Add(10)
	b.Inc()
	if got := a.Value(); got != 10 {
		t.Fatalf("cell a = %d, want 10", got)
	}
	if got := c.Value(); got != 16 {
		t.Fatalf("counter total = %d, want 16 (default 5 + cells 11)", got)
	}
	if got := r.CounterValue("tx_total"); got != 16 {
		t.Fatalf("CounterValue = %d, want 16", got)
	}
}

func TestCounterConcurrentCells(t *testing.T) {
	c := newCounter()
	const writers, per = 8, 10_000
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		cell := c.NewCell()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				cell.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != writers*per {
		t.Fatalf("counter = %d, want %d", got, writers*per)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	var want float64
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
		want += v // same left-to-right float64 accumulation as the histogram
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	bounds, cum := h.Buckets()
	wantCum := []int64{2, 3, 4} // le=0.01: {0.005, 0.01}; le=0.1: +0.05; le=1: +0.5
	for i := range bounds {
		if cum[i] != wantCum[i] {
			t.Fatalf("cumulative[le=%g] = %d, want %d", bounds[i], cum[i], wantCum[i])
		}
	}
}

func TestGaugeVecChildren(t *testing.T) {
	v := &GaugeVec{label: "host", children: map[string]*Gauge{}}
	g := v.With("evil.example")
	g.Set(2)
	if v.With("evil.example") != g {
		t.Fatal("With returned a new child for an existing label value")
	}
	if v.Len() != 1 {
		t.Fatalf("Len = %d, want 1", v.Len())
	}
	v.Delete("evil.example")
	if v.Len() != 0 {
		t.Fatalf("Len after Delete = %d, want 0", v.Len())
	}
}

func TestRegistryClock(t *testing.T) {
	r := NewRegistry()
	fixed := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return fixed })
	if !r.Now().Equal(fixed) {
		t.Fatal("injected clock not consulted")
	}
	r.SetClock(nil)
	if r.Now().IsZero() {
		t.Fatal("nil clock did not restore the wall clock")
	}
}

func TestWritePrometheusParsesBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("dynaminer_events_total", "events processed").Add(7)
	r.Gauge("dynaminer_watched_total", "watched clusters").Set(3)
	h := r.Histogram("dynaminer_classify_seconds", "classify latency", LatencyBuckets)
	h.Observe(0.001)
	h.Observe(2)
	v := r.GaugeVec("dynaminer_breaker_state_total", "breaker state by host", "host")
	v.With("a.example").Set(1)
	v.With(`b"?\.example`).Set(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if got := fams["dynaminer_events_total"].Samples["dynaminer_events_total"]; got != 7 {
		t.Fatalf("counter sample = %g, want 7", got)
	}
	hist := fams["dynaminer_classify_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram family type = %q", hist.Type)
	}
	if got := hist.Samples["dynaminer_classify_seconds_count"]; got != 2 {
		t.Fatalf("histogram count = %g, want 2", got)
	}
	vec := fams["dynaminer_breaker_state_total"]
	if len(vec.Samples) != 2 {
		t.Fatalf("gauge vec samples = %d, want 2: %v", len(vec.Samples), vec.Samples)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"untyped sample":   "loose_metric_total 3\n",
		"non-numeric":      "# TYPE x_total counter\nx_total banana\n",
		"unknown type":     "# TYPE x_total flavor\nx_total 1\n",
		"duplicate sample": "# TYPE x_total counter\nx_total 1\nx_total 2\n",
		"histogram hole":   "# TYPE h_seconds histogram\nh_seconds_sum 1\nh_seconds_count 1\n",
		"histogram decreasing": "# TYPE h_seconds histogram\n" +
			"h_seconds_bucket{le=\"1\"} 5\nh_seconds_bucket{le=\"2\"} 3\n" +
			"h_seconds_bucket{le=\"+Inf\"} 5\nh_seconds_sum 9\nh_seconds_count 5\n",
	}
	for name, payload := range cases {
		if _, err := ParseExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: ParseExposition accepted malformed payload", name)
		}
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "counter").Add(2)
	h := r.Histogram("h_seconds", "hist", []float64{1, 2})
	h.Observe(1.5)
	r.GaugeVec("v_total", "vec", "host").With("x").Set(9)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	byName := map[string]MetricSnapshot{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if byName["c_total"].Value != 2 || byName["c_total"].Type != "counter" {
		t.Fatalf("counter snapshot wrong: %+v", byName["c_total"])
	}
	hs := byName["h_seconds"]
	if hs.Count != 1 || hs.Sum != 1.5 || len(hs.Buckets) != 2 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if hs.Buckets[0].Count != 0 || hs.Buckets[1].Count != 1 {
		t.Fatalf("histogram cumulative buckets wrong: %+v", hs.Buckets)
	}
	if byName["v_total"].Children["x"] != 9 {
		t.Fatalf("vec snapshot wrong: %+v", byName["v_total"])
	}
}
