package obs

// Journal telemetry: rotations and the live file size must be visible on
// a metrics registry, including rotations that happened before a
// registry was attached (backfill), and idempotently per registry.

import (
	"path/filepath"
	"testing"
)

// TestJournalSizeGauge: the size gauge tracks the live file as appends
// accumulate.
func TestJournalSizeGauge(t *testing.T) {
	j, err := NewJournalWith(filepath.Join(t.TempDir(), "alerts.jsonl"), JournalConfig{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	reg := NewRegistry()
	j.PublishMetrics(reg)
	if got := reg.GaugeValue("dynaminer_journal_size_bytes"); got != 0 {
		t.Fatalf("fresh journal size gauge = %v", got)
	}
	var last int64
	for i := 0; i < 3; i++ {
		if err := j.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
		got := reg.GaugeValue("dynaminer_journal_size_bytes")
		if got <= last {
			t.Fatalf("size gauge %v did not grow past %v after append %d", got, last, i)
		}
		last = got
	}
}

// TestJournalRotationMetrics: a tiny MaxBytes forces rotations, each one
// visible on the counter; the size gauge resets with the fresh live file.
func TestJournalRotationMetrics(t *testing.T) {
	j, err := NewJournalWith(filepath.Join(t.TempDir(), "alerts.jsonl"), JournalConfig{MaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	reg := NewRegistry()
	j.PublishMetrics(reg)

	if got := reg.CounterValue("dynaminer_journal_rotations_total"); got != 0 {
		t.Fatalf("fresh journal rotations counter = %v", got)
	}
	for i := 0; i < 6; i++ {
		if err := j.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	rot := j.Rotations()
	if rot == 0 {
		t.Fatal("512-byte cap never rotated; the metric test is vacuous")
	}
	if got := reg.CounterValue("dynaminer_journal_rotations_total"); got != rot {
		t.Fatalf("rotations counter = %v, journal reports %d", got, rot)
	}
	// Rotation renames the full file away, so the live file — and the
	// gauge — must sit strictly under the cap.
	size := reg.GaugeValue("dynaminer_journal_size_bytes")
	if size < 0 || size >= 512 {
		t.Fatalf("size gauge = %v, want the post-rotation live file size in [0,512)", size)
	}

	// Attaching a second registry backfills the rotations already done.
	reg2 := NewRegistry()
	j.PublishMetrics(reg2)
	if got := reg2.CounterValue("dynaminer_journal_rotations_total"); got != rot {
		t.Fatalf("backfilled rotations counter = %v, want %d", got, rot)
	}
	// Re-publishing on the same registry must not double-count.
	j.PublishMetrics(reg2)
	if got, want := reg2.CounterValue("dynaminer_journal_rotations_total"), j.Rotations(); got != want {
		t.Fatalf("rotations counter after re-publish = %v, journal reports %v", got, want)
	}
}
