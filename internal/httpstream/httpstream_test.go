package httpstream

import (
	"fmt"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dynaminer/internal/pcap"
)

var (
	clientIP = netip.MustParseAddr("10.0.0.5")
	serverIP = netip.MustParseAddr("203.0.113.80")
	baseTime = time.Date(2016, 7, 10, 14, 0, 0, 0, time.UTC)
)

func mkStream(src, dst netip.Addr, sp, dp uint16, data string) *pcap.Stream {
	conv := pcap.Conversation{
		ClientIP:   src,
		ServerIP:   dst,
		ClientPort: sp,
		ServerPort: dp,
		Exchanges: []pcap.Exchange{
			{ClientToServer: true, Payload: []byte(data), Timestamp: baseTime},
		},
	}
	pkts, err := pcap.BuildConversation(conv)
	if err != nil {
		panic(err)
	}
	for _, s := range pcap.AssembleStreams(pkts) {
		if s.Key.SrcIP == src && s.Key.SrcPort == sp {
			return s
		}
	}
	panic("stream not found")
}

// buildConv renders alternating request/response payload strings into a
// full conversation and returns the reassembled streams.
func buildConv(reqData, respData string) (c2s, s2c *pcap.Stream) {
	conv := pcap.Conversation{
		ClientIP:   clientIP,
		ServerIP:   serverIP,
		ClientPort: 49200,
		ServerPort: 80,
		Exchanges: []pcap.Exchange{
			{ClientToServer: true, Payload: []byte(reqData), Timestamp: baseTime},
			{ClientToServer: false, Payload: []byte(respData), Timestamp: baseTime.Add(40 * time.Millisecond)},
		},
	}
	pkts, err := pcap.BuildConversation(conv)
	if err != nil {
		panic(err)
	}
	for _, s := range pcap.AssembleStreams(pkts) {
		if s.Key.DstPort == 80 {
			c2s = s
		} else {
			s2c = s
		}
	}
	return c2s, s2c
}

// buildConvPackets renders one request/response exchange into raw capture
// packets (for paths, like FromPackets, that own the reassembly step).
func buildConvPackets(t *testing.T, reqData, respData string) []pcap.Packet {
	t.Helper()
	pkts, err := pcap.BuildConversation(pcap.Conversation{
		ClientIP:   clientIP,
		ServerIP:   serverIP,
		ClientPort: 49200,
		ServerPort: 80,
		Exchanges: []pcap.Exchange{
			{ClientToServer: true, Payload: []byte(reqData), Timestamp: baseTime},
			{ClientToServer: false, Payload: []byte(respData), Timestamp: baseTime.Add(40 * time.Millisecond)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

const simpleGet = "GET /index.html HTTP/1.1\r\n" +
	"Host: example.com\r\n" +
	"Referer: http://bing.com/search?q=x\r\n" +
	"User-Agent: MSIE8.0\r\n" +
	"DNT: 1\r\n" +
	"X-Flash-Version: 18,0,0,232\r\n" +
	"Cookie: sid=abc123; theme=dark\r\n" +
	"\r\n"

const simpleResp = "HTTP/1.1 200 OK\r\n" +
	"Content-Type: text/html\r\n" +
	"Content-Length: 12\r\n" +
	"Set-Cookie: sid=abc123; Path=/\r\n" +
	"\r\n" +
	"<html></html"

func TestExtractPairBasic(t *testing.T) {
	c2s, s2c := buildConv(simpleGet, simpleResp)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1", len(txs))
	}
	tx := txs[0]
	if tx.Method != "GET" || tx.URI != "/index.html" || tx.Host != "example.com" {
		t.Fatalf("request fields wrong: %+v", tx)
	}
	if tx.StatusCode != 200 || tx.ContentType != "text/html" || tx.BodySize != 12 {
		t.Fatalf("response fields wrong: code=%d ct=%q size=%d", tx.StatusCode, tx.ContentType, tx.BodySize)
	}
	if tx.Referer() != "http://bing.com/search?q=x" {
		t.Fatalf("referer = %q", tx.Referer())
	}
	if !tx.DNT() {
		t.Fatal("DNT must be true")
	}
	if tx.XFlashVersion() != "18,0,0,232" {
		t.Fatalf("x-flash-version = %q", tx.XFlashVersion())
	}
	if tx.SessionID() != "sid=abc123" {
		t.Fatalf("session id = %q", tx.SessionID())
	}
	if tx.UserAgent() != "MSIE8.0" {
		t.Fatalf("user agent = %q", tx.UserAgent())
	}
	if tx.URL() != "http://example.com/index.html" {
		t.Fatalf("url = %q", tx.URL())
	}
	if tx.RespTime.Before(tx.ReqTime) {
		t.Fatal("response time precedes request time")
	}
	if tx.IsRedirect() {
		t.Fatal("200 is not a redirect")
	}
}

func TestSessionIDFallsBackToRequestCookie(t *testing.T) {
	tx := Transaction{
		ReqHdr:  http.Header{"Cookie": {"u=9; x=1"}},
		RespHdr: http.Header{},
	}
	if tx.SessionID() != "u=9" {
		t.Fatalf("session id = %q", tx.SessionID())
	}
	tx2 := Transaction{ReqHdr: http.Header{}, RespHdr: http.Header{}}
	if tx2.SessionID() != "" {
		t.Fatal("empty headers must give empty session id")
	}
}

func TestPipelinedTransactions(t *testing.T) {
	reqs := "GET /a HTTP/1.1\r\nHost: h1.com\r\n\r\n" +
		"POST /b HTTP/1.1\r\nHost: h1.com\r\nContent-Length: 3\r\n\r\nxyz" +
		"GET /c HTTP/1.1\r\nHost: h1.com\r\n\r\n"
	resps := "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok" +
		"HTTP/1.1 302 Found\r\nLocation: http://h2.com/l\r\nContent-Length: 0\r\n\r\n" +
		"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
	c2s, s2c := buildConv(reqs, resps)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 3 {
		t.Fatalf("transactions = %d, want 3", len(txs))
	}
	if txs[0].StatusCode != 200 || txs[1].StatusCode != 302 || txs[2].StatusCode != 404 {
		t.Fatalf("status codes: %d %d %d", txs[0].StatusCode, txs[1].StatusCode, txs[2].StatusCode)
	}
	if txs[1].Method != "POST" {
		t.Fatalf("method[1] = %q", txs[1].Method)
	}
	if !txs[1].IsRedirect() || txs[1].Location() != "http://h2.com/l" {
		t.Fatalf("redirect detection failed: %+v", txs[1])
	}
}

func TestChunkedResponse(t *testing.T) {
	resp := "HTTP/1.1 200 OK\r\n" +
		"Content-Type: application/x-shockwave-flash\r\n" +
		"Transfer-Encoding: chunked\r\n\r\n" +
		"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
	c2s, s2c := buildConv("GET /f.swf HTTP/1.1\r\nHost: ek.com\r\n\r\n", resp)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d", len(txs))
	}
	if txs[0].BodySize != 11 || string(txs[0].Body) != "hello world" {
		t.Fatalf("chunked body: size=%d body=%q", txs[0].BodySize, txs[0].Body)
	}
}

func TestRequestWithoutResponse(t *testing.T) {
	c2s := mkStream(clientIP, serverIP, 49300, 80, "GET /x HTTP/1.1\r\nHost: a.com\r\n\r\n")
	txs := ExtractPair(c2s, nil)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1", len(txs))
	}
	if txs[0].StatusCode != 0 {
		t.Fatalf("status = %d, want 0 for missing response", txs[0].StatusCode)
	}
}

func TestMalformedRequestStopsParsing(t *testing.T) {
	data := "GET /ok HTTP/1.1\r\nHost: a.com\r\n\r\nNOT-HTTP GARBAGE"
	c2s := mkStream(clientIP, serverIP, 49301, 80, data)
	txs := ExtractPair(c2s, nil)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1 (garbage must stop parsing)", len(txs))
	}
}

func TestTruncatedResponseBodyKept(t *testing.T) {
	// Content-Length promises 100 bytes but only 10 arrive.
	resp := "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n0123456789"
	c2s, s2c := buildConv("GET /t HTTP/1.1\r\nHost: a.com\r\n\r\n", resp)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1", len(txs))
	}
	if txs[0].BodySize != 10 {
		t.Fatalf("truncated body size = %d, want 10", txs[0].BodySize)
	}
}

func TestExtractAllEndToEnd(t *testing.T) {
	var convs []pcap.Conversation
	for i := 0; i < 3; i++ {
		req := fmt.Sprintf("GET /page%d HTTP/1.1\r\nHost: site%d.com\r\n\r\n", i, i)
		resp := "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"
		convs = append(convs, pcap.Conversation{
			ClientIP:   clientIP,
			ServerIP:   netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", 10+i)),
			ClientPort: uint16(49400 + i),
			ServerPort: 80,
			Exchanges: []pcap.Exchange{
				{ClientToServer: true, Payload: []byte(req), Timestamp: baseTime.Add(time.Duration(2-i) * time.Second)},
				{ClientToServer: false, Payload: []byte(resp), Timestamp: baseTime.Add(time.Duration(2-i)*time.Second + 50*time.Millisecond)},
			},
		})
	}
	var pkts []pcap.Packet
	for _, c := range convs {
		p, err := pcap.BuildConversation(c)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p...)
	}
	txs := FromPackets(pkts)
	if len(txs) != 3 {
		t.Fatalf("transactions = %d, want 3", len(txs))
	}
	// Sorted by request time: conversation order is reversed.
	if txs[0].Host != "site2.com" || txs[2].Host != "site0.com" {
		t.Fatalf("not time-sorted: %s .. %s", txs[0].Host, txs[2].Host)
	}
}

func TestLooksLikeRequest(t *testing.T) {
	if !looksLikeRequest([]byte("POST /x HTTP/1.1\r\n")) {
		t.Fatal("POST must look like a request")
	}
	if looksLikeRequest([]byte("HTTP/1.1 200 OK\r\n")) {
		t.Fatal("response must not look like a request")
	}
}

func TestTransactionString(t *testing.T) {
	tx := Transaction{
		Method: "GET", Host: "a.com", URI: "/x",
		StatusCode: 200, ContentType: "text/html", BodySize: 5,
		ReqHdr: http.Header{}, RespHdr: http.Header{},
	}
	s := tx.String()
	if !strings.Contains(s, "GET http://a.com/x") || !strings.Contains(s, "200") {
		t.Fatalf("string = %q", s)
	}
}

func TestLargeBodyCapped(t *testing.T) {
	body := strings.Repeat("A", maxRetainedBody+5000)
	resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	c2s, s2c := buildConv("GET /big HTTP/1.1\r\nHost: a.com\r\n\r\n", resp)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d", len(txs))
	}
	if txs[0].BodySize != len(body) {
		t.Fatalf("body size = %d, want %d", txs[0].BodySize, len(body))
	}
	if len(txs[0].Body) != maxRetainedBody {
		t.Fatalf("retained body = %d, want cap %d", len(txs[0].Body), maxRetainedBody)
	}
}

func TestHTTP10CloseDelimitedResponse(t *testing.T) {
	// HTTP/1.0 without Content-Length: the body runs to connection close.
	resp := "HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\n<html>old school</html>"
	c2s, s2c := buildConv("GET /legacy HTTP/1.0\r\nHost: old.com\r\n\r\n", resp)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want 1", len(txs))
	}
	if string(txs[0].Body) != "<html>old school</html>" {
		t.Fatalf("body = %q", txs[0].Body)
	}
	if txs[0].BodySize != len("<html>old school</html>") {
		t.Fatalf("size = %d", txs[0].BodySize)
	}
}

func TestHeadRequestNoBodyConfusion(t *testing.T) {
	// HEAD responses carry headers but no body; the next response must
	// still parse correctly thanks to positional request matching.
	reqs := "HEAD /a HTTP/1.1\r\nHost: h.com\r\n\r\n" +
		"GET /b HTTP/1.1\r\nHost: h.com\r\n\r\n"
	resps := "HTTP/1.1 200 OK\r\nContent-Length: 999\r\nContent-Type: text/html\r\n\r\n" +
		"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
	c2s, s2c := buildConv(reqs, resps)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 2 {
		t.Fatalf("transactions = %d, want 2", len(txs))
	}
	if txs[0].Method != "HEAD" || txs[0].BodySize != 0 {
		t.Fatalf("HEAD tx = %+v", txs[0])
	}
	if string(txs[1].Body) != "ok" {
		t.Fatalf("second body = %q", txs[1].Body)
	}
}
