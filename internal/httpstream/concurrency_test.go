package httpstream

import (
	"fmt"
	"sync"
	"testing"
)

// TestParallelStreamExtraction parses independent conversations from many
// goroutines at once. Extraction keeps all state on the stack, so parallel
// captures (one per worker in a sharded deployment) must never interfere;
// under -race this guards against any hidden package-level scratch state
// creeping into the parser.
func TestParallelStreamExtraction(t *testing.T) {
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			uri := fmt.Sprintf("/worker/%d/page.html", g)
			req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: w%d.example.com\r\n\r\n", uri, g)
			resp := "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello"
			for i := 0; i < iters; i++ {
				c2s, s2c := buildConv(req, resp)
				txs := ExtractPair(c2s, s2c)
				if len(txs) != 1 {
					errs <- fmt.Errorf("worker %d iter %d: %d transactions, want 1", g, i, len(txs))
					return
				}
				tx := txs[0]
				if tx.URI != uri || tx.Host != fmt.Sprintf("w%d.example.com", g) || tx.StatusCode != 200 {
					errs <- fmt.Errorf("worker %d iter %d: cross-talk in parsed transaction: %+v", g, i, tx)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
