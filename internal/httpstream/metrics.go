package httpstream

import (
	"sync/atomic"
	"time"

	"dynaminer/internal/obs"
)

// httpstream is a library with no owning serving instance, so its parse
// telemetry lives on the process-wide obs.Default registry. The clock is
// a function value (never a bare time.Now() call — the zerotime
// invariant) so the package can be pointed at a fake clock if a test
// ever needs to.
var (
	parseClock = time.Now

	parseSeconds = obs.Default().Histogram("dynaminer_httpstream_parse_seconds",
		"Wall time parsing one TCP conversation into transactions.", obs.LatencyBuckets)
	parseTransactions = obs.Default().Counter("dynaminer_httpstream_transactions_total",
		"Transactions extracted from parsed streams.")
	parseBytes = obs.Default().Counter("dynaminer_httpstream_bytes_total",
		"TCP payload bytes fed through the HTTP parsers.")
)

// traceBinding mirrors the parse telemetry into a pipeline tracer's
// httpstream.parse stage (histogram + slow EWMA). Like the registry
// metrics above it is package-level — parsing is batch-shaped, one call
// covering a whole TCP conversation, so it feeds stage latency rather
// than opening spans inside any single transaction's tree.
type traceBinding struct {
	t     *obs.Tracer
	stage obs.StageID
}

var parseTrace atomic.Pointer[traceBinding]

// SetTracer attaches (or, with nil, detaches) a pipeline tracer to the
// package's parse timing.
func SetTracer(t *obs.Tracer) {
	if t == nil {
		parseTrace.Store(nil)
		return
	}
	parseTrace.Store(&traceBinding{t: t, stage: t.Stage("httpstream.parse")})
}
