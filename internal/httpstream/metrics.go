package httpstream

import (
	"time"

	"dynaminer/internal/obs"
)

// httpstream is a library with no owning serving instance, so its parse
// telemetry lives on the process-wide obs.Default registry. The clock is
// a function value (never a bare time.Now() call — the zerotime
// invariant) so the package can be pointed at a fake clock if a test
// ever needs to.
var (
	parseClock = time.Now

	parseSeconds = obs.Default().Histogram("dynaminer_httpstream_parse_seconds",
		"Wall time parsing one TCP conversation into transactions.", obs.LatencyBuckets)
	parseTransactions = obs.Default().Counter("dynaminer_httpstream_transactions_total",
		"Transactions extracted from parsed streams.")
	parseBytes = obs.Default().Counter("dynaminer_httpstream_bytes_total",
		"TCP payload bytes fed through the HTTP parsers.")
)
