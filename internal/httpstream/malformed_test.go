package httpstream

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestTruncatedGzipDegradesToPlaintextPrefix pins the degraded path for a
// capture cut mid-transfer: the advertised Content-Length exceeds what is
// on the wire, and the gzip stream is incomplete. The transaction must
// survive with the decodable plaintext prefix instead of being dropped.
func TestTruncatedGzipDegradesToPlaintextPrefix(t *testing.T) {
	html := strings.Repeat("<div>malvertising chain hop</div>\n", 200)
	gz := gzipBytes(t, html)
	cut := gz[:len(gz)/2]
	resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Encoding: gzip\r\nContent-Length: %d\r\n\r\n", len(gz))
	c2s, s2c := buildConv("GET /ad HTTP/1.1\r\nHost: cdn.evil/\r\n\r\n", resp+string(cut))

	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want the truncated one kept", len(txs))
	}
	tx := txs[0]
	if tx.StatusCode != 200 || tx.BodySize != len(cut) {
		t.Fatalf("status=%d bodySize=%d, want 200/%d", tx.StatusCode, tx.BodySize, len(cut))
	}
	if len(tx.Body) == 0 || !strings.HasPrefix(html, string(tx.Body)) {
		t.Fatalf("body is not a plaintext prefix: %.60q", tx.Body)
	}
}

// TestBadChunkedFramingDegradesToRaw pins the new raw-prefix fallback: a
// chunked response whose first chunk-size line is garbage used to yield an
// empty body; now the raw stream remainder is retained as evidence.
func TestBadChunkedFramingDegradesToRaw(t *testing.T) {
	payload := "ZZZZ\r\n<html>not really chunked</html>\r\n0\r\n\r\n"
	resp := "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nTransfer-Encoding: chunked\r\n\r\n" + payload
	c2s, s2c := buildConv("GET /x HTTP/1.1\r\nHost: broken.example\r\n\r\n", resp)

	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want the malformed one kept", len(txs))
	}
	tx := txs[0]
	if tx.StatusCode != 200 {
		t.Fatalf("status = %d", tx.StatusCode)
	}
	if string(tx.Body) != payload || tx.BodySize != len(payload) {
		t.Fatalf("body = %.60q (size %d), want the raw remainder", tx.Body, tx.BodySize)
	}
}

// TestBadChunkedRawFallbackCapped pins that the raw fallback still honors
// the retained-body cap.
func TestBadChunkedRawFallbackCapped(t *testing.T) {
	payload := "XXXX\r\n" + strings.Repeat("A", maxRetainedBody*2)
	resp := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" + payload
	c2s, s2c := buildConv("GET /big HTTP/1.1\r\nHost: broken.example\r\n\r\n", resp)

	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d", len(txs))
	}
	if len(txs[0].Body) != maxRetainedBody || txs[0].BodySize != len(payload) {
		t.Fatalf("body len = %d (size %d), want capped at %d with full wire size",
			len(txs[0].Body), txs[0].BodySize, maxRetainedBody)
	}
}

// TestGarbageResponseStreamKeepsRequests pins that a server direction the
// parser cannot read at all still yields request-only transactions.
func TestGarbageResponseStreamKeepsRequests(t *testing.T) {
	c2s, s2c := buildConv(simpleGet, "\x00\x01\x02 this is not HTTP at all")
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d, want the unmatched request kept", len(txs))
	}
	if txs[0].StatusCode != 0 || txs[0].Method != "GET" {
		t.Fatalf("tx = %+v, want request-only transaction", txs[0])
	}
}

// TestProperlyChunkedStillDecodes guards the fallback against false
// positives: well-formed chunked bodies must keep decoding normally.
func TestProperlyChunkedStillDecodes(t *testing.T) {
	body := "<html>chunked ok</html>"
	chunked := fmt.Sprintf("%x\r\n%s\r\n0\r\n\r\n", len(body), body)
	resp := "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nTransfer-Encoding: chunked\r\n\r\n" + chunked
	c2s, s2c := buildConv("GET /ok HTTP/1.1\r\nHost: fine.example\r\n\r\n", resp)

	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 || !bytes.Equal(txs[0].Body, []byte(body)) {
		t.Fatalf("chunked decode broken: %+v", txs)
	}
}

// TestDegradedBodySurvivesPooledAssemblerReuse pins that the raw-fallback
// body is detached from the stream buffer: FromPackets now draws its
// assembler from a pool, so a body still aliasing the stream arena would
// be overwritten by the next capture that reuses the assembler.
func TestDegradedBodySurvivesPooledAssemblerReuse(t *testing.T) {
	payload := "ZZZZ\r\n<html>evidence we must keep</html>\r\n0\r\n\r\n"
	resp := "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nTransfer-Encoding: chunked\r\n\r\n" + payload
	pkts := buildConvPackets(t, "GET /x HTTP/1.1\r\nHost: broken.example\r\n\r\n", resp)

	txs := FromPackets(pkts)
	if len(txs) != 1 || string(txs[0].Body) != payload {
		t.Fatalf("degraded body = %.60q, want raw remainder", txs[0].Body)
	}

	// Churn the assembler pool with captures big enough to overwrite the
	// arena bytes the first body would still be aliasing.
	filler := strings.Repeat("B", len(resp)*4)
	for i := 0; i < 4; i++ {
		fillResp := "HTTP/1.1 200 OK\r\nContent-Length: " +
			fmt.Sprint(len(filler)) + "\r\n\r\n" + filler
		_ = FromPackets(buildConvPackets(t, "GET /fill HTTP/1.1\r\nHost: filler.example\r\n\r\n", fillResp))
	}
	if string(txs[0].Body) != payload {
		t.Fatalf("degraded body corrupted by pooled assembler reuse: %.60q", txs[0].Body)
	}
}
