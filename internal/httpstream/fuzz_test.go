package httpstream

import (
	"net/netip"
	"testing"

	"dynaminer/internal/pcap"
)

// Seed corpus: the handcrafted edge cases below plus realistic pipelined
// traffic generated from the synth corpus, checked in under
// testdata/fuzz/<FuzzName>/ (regenerate with TestWriteFuzzSeedCorpus in
// internal/synth).

// malformedSeeds are handcrafted edge cases: truncation points, bad
// framing, binary garbage, and header pathologies.
var malformedSeeds = []string{
	"",
	"\x00\x01\x02\x03",
	"GET",
	"GET / HTTP/1.1\r\n",
	"GET / HTTP/1.1\r\nHost: a\r\n\r\n",
	"POST /u HTTP/1.1\r\nHost: a\r\nContent-Length: 99\r\n\r\nshort",
	"POST /u HTTP/1.1\r\nHost: a\r\nContent-Length: -1\r\n\r\n",
	"HTTP/1.1 200 OK\r\n\r\n",
	"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort",
	"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nZZZ\r\nbody",
	"HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\nContent-Length: 4\r\n\r\n\x1f\x8b\x08\x00",
	"HTTP/1.1 304 Not Modified\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
	"GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\nGET /2 HTTP/1.1\r\n\r\n",
}

func FuzzParseRequests(f *testing.F) {
	for _, s := range malformedSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		parseRequests(data)
	})
}

func FuzzParseResponses(f *testing.F) {
	for _, s := range malformedSeeds {
		f.Add([]byte(s))
	}
	// A fixed pipelined request list so positional matching (HEAD and
	// status-only semantics) is exercised against arbitrary response bytes.
	reqs := parseRequests([]byte(
		"HEAD /h HTTP/1.1\r\nHost: a\r\n\r\n" +
			"GET /1 HTTP/1.1\r\nHost: a\r\n\r\n" +
			"GET /2 HTTP/1.1\r\nHost: a\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parseResponses(data, reqs)
	})
}

func FuzzExtractPair(f *testing.F) {
	for _, s := range malformedSeeds {
		f.Add([]byte("GET / HTTP/1.1\r\nHost: a\r\n\r\n"), []byte(s))
		f.Add([]byte(s), []byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"))
	}
	key := pcap.FlowKey{
		SrcIP:   netip.MustParseAddr("10.0.0.5"),
		DstIP:   netip.MustParseAddr("203.0.113.80"),
		SrcPort: 49200,
		DstPort: 80,
	}
	f.Fuzz(func(t *testing.T, creq, sresp []byte) {
		ExtractPair(&pcap.Stream{Key: key, Data: creq}, &pcap.Stream{Key: key.Reverse(), Data: sresp})
	})
}
