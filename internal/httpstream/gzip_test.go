package httpstream

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"fmt"
	"strings"
	"testing"
)

func gzipBytes(t *testing.T, s string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func deflateBytes(t *testing.T, s string) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write([]byte(s)); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGzipResponseDecoded(t *testing.T) {
	html := `<html><iframe src="http://exploit.evil.ru/gate"></iframe></html>`
	gz := gzipBytes(t, html)
	resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Encoding: gzip\r\nContent-Length: %d\r\n\r\n", len(gz))
	c2s, s2c := buildConv("GET /p HTTP/1.1\r\nHost: landing.com\r\n\r\n", resp+string(gz))
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 {
		t.Fatalf("transactions = %d", len(txs))
	}
	if string(txs[0].Body) != html {
		t.Fatalf("body not decoded: %q", txs[0].Body)
	}
	// BodySize stays the wire size.
	if txs[0].BodySize != len(gz) {
		t.Fatalf("body size = %d, want wire size %d", txs[0].BodySize, len(gz))
	}
}

func TestDeflateResponseDecoded(t *testing.T) {
	html := "<html>deflated content</html>"
	fl := deflateBytes(t, html)
	resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Encoding: deflate\r\nContent-Length: %d\r\n\r\n", len(fl))
	c2s, s2c := buildConv("GET /p HTTP/1.1\r\nHost: a.com\r\n\r\n", resp+string(fl))
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 || string(txs[0].Body) != html {
		t.Fatalf("deflate not decoded: %q", txs[0].Body)
	}
}

func TestCorruptGzipKeptRaw(t *testing.T) {
	raw := "definitely-not-gzip"
	resp := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\nContent-Length: %d\r\n\r\n%s", len(raw), raw)
	c2s, s2c := buildConv("GET /p HTTP/1.1\r\nHost: a.com\r\n\r\n", resp)
	txs := ExtractPair(c2s, s2c)
	if len(txs) != 1 || string(txs[0].Body) != raw {
		t.Fatalf("corrupt gzip must be kept raw: %q", txs[0].Body)
	}
}

func TestDecodeContentIdentity(t *testing.T) {
	body := []byte("plain")
	if got := decodeContent(body, ""); !bytes.Equal(got, body) {
		t.Fatal("identity encoding changed body")
	}
	if got := decodeContent(body, "br"); !bytes.Equal(got, body) {
		t.Fatal("unknown encoding must keep body raw")
	}
}

func TestDecodedBodyCapped(t *testing.T) {
	huge := strings.Repeat("A", maxRetainedBody*3)
	got := decodeContent(gzipBytes(t, huge), "gzip")
	if len(got) > maxRetainedBody+1 {
		t.Fatalf("decoded body not capped: %d", len(got))
	}
}
