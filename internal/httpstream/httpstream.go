// Package httpstream extracts paired HTTP/1.x transactions from
// reassembled TCP streams. A Transaction is the unit the rest of DynaMiner
// reasons about: the web conversation graph is built from transactions, and
// the on-the-wire detector consumes a live transaction stream.
package httpstream

import (
	"bufio"
	"bytes"
	"compress/flate"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"dynaminer/internal/pcap"
)

// maxRetainedBody caps how much response body is kept on a Transaction.
// DynaMiner is payload-agnostic, but the WCG construction stage sniffs
// bodies for meta/JavaScript redirects, so a prefix is retained.
const maxRetainedBody = 64 * 1024

// Transaction is one HTTP request/response pair between a client and a
// server, with the header and timing attributes the WCG annotations need.
type Transaction struct {
	ClientIP   netip.Addr
	ServerIP   netip.Addr
	ClientPort uint16
	ServerPort uint16

	Method      string
	URI         string
	Host        string
	ReqHdr      http.Header
	ReqTime     time.Time
	ReqBodySize int // bytes uploaded with the request (exfiltration volume)

	StatusCode  int
	RespHdr     http.Header
	RespTime    time.Time
	ContentType string
	BodySize    int
	Body        []byte // response body prefix, at most maxRetainedBody bytes
}

// Referer returns the request Referer header ("" when absent).
func (t *Transaction) Referer() string { return t.ReqHdr.Get("Referer") }

// Location returns the response Location header ("" when absent).
func (t *Transaction) Location() string { return t.RespHdr.Get("Location") }

// UserAgent returns the request User-Agent header.
func (t *Transaction) UserAgent() string { return t.ReqHdr.Get("User-Agent") }

// DNT reports whether the client sent "DNT: 1".
func (t *Transaction) DNT() bool { return t.ReqHdr.Get("DNT") == "1" }

// XFlashVersion returns the x-flash-version request header value.
func (t *Transaction) XFlashVersion() string { return t.ReqHdr.Get("X-Flash-Version") }

// SessionID extracts a session identifier from cookies: the response
// Set-Cookie wins, then the request Cookie header. Only the first
// name=value pair is used, mirroring the session-URI heuristic the paper
// cites for grouping transactions.
func (t *Transaction) SessionID() string {
	if sc := t.RespHdr.Get("Set-Cookie"); sc != "" {
		return firstCookiePair(sc)
	}
	if c := t.ReqHdr.Get("Cookie"); c != "" {
		return firstCookiePair(c)
	}
	return ""
}

func firstCookiePair(s string) string {
	if i := strings.IndexByte(s, ';'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// URL reconstructs the absolute URL of the request.
func (t *Transaction) URL() string {
	host := t.Host
	if host == "" {
		host = t.ServerIP.String()
	}
	return "http://" + host + t.URI
}

// IsRedirect reports whether the response is a 3xx with a Location header.
func (t *Transaction) IsRedirect() bool {
	return t.StatusCode >= 300 && t.StatusCode < 400 && t.Location() != ""
}

// String renders a compact one-line summary, useful in logs and examples.
func (t *Transaction) String() string {
	return fmt.Sprintf("%s %s -> %d %s (%d bytes)", t.Method, t.URL(), t.StatusCode, t.ContentType, t.BodySize)
}

// countingReader tracks consumed bytes so message start offsets inside a
// stream can be recovered despite bufio read-ahead.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

type reqMsg struct {
	req      *http.Request
	offset   int
	bodySize int
}

type respMsg struct {
	resp     *http.Response
	offset   int
	body     []byte
	bodySize int
}

// streamParser is the reusable parse state one ExtractPair call borrows
// from parserPool: the byte/counting/bufio reader stack and the
// reqMsg/respMsg product slices. Before the pool, every conversation
// allocated all of it afresh — under steady-state ingestion that was the
// dominant per-stream garbage outside net/http itself. A parser serves one
// conversation at a time; release zeroes the message slices so pooled
// parsers never pin request/response objects (or their bodies) across
// uses.
type streamParser struct {
	rd    bytes.Reader
	cr    countingReader
	br    *bufio.Reader
	reqs  []reqMsg
	resps []respMsg
}

var parserPool = sync.Pool{
	New: func() any { return newStreamParser() },
}

func newStreamParser() *streamParser {
	p := &streamParser{}
	p.br = bufio.NewReader(&p.cr)
	return p
}

// start aims the reader stack at a new direction's bytes.
//
//dynalint:hotpath
func (p *streamParser) start(data []byte) {
	p.rd.Reset(data)
	p.cr = countingReader{r: &p.rd}
	p.br.Reset(&p.cr)
}

// release returns the parser to the pool. The message slices are cleared
// element-wise first: their *http.Request/*http.Response references (and
// body prefixes) now belong to the extracted Transactions, and a pooled
// parser must not keep them alive.
//
//dynalint:hotpath
func (p *streamParser) release() {
	clear(p.reqs)
	clear(p.resps)
	p.reqs, p.resps = p.reqs[:0], p.resps[:0]
	parserPool.Put(p)
}

// parseRequests parses consecutive HTTP requests from data with a fresh
// parser (the pooled path goes through ExtractPair; the fuzz targets and
// tests drive this entry).
func parseRequests(data []byte) []reqMsg {
	return newStreamParser().requests(data)
}

// parseResponses is the fresh-parser counterpart for responses.
func parseResponses(data []byte, reqs []reqMsg) []respMsg {
	return newStreamParser().responses(data, reqs)
}

// requests parses consecutive HTTP requests from data into the parser's
// reused slice, recording each request's byte offset. Parsing stops at the
// first malformed message.
//
//dynalint:hotpath
func (p *streamParser) requests(data []byte) []reqMsg {
	p.start(data)
	out := p.reqs[:0]
	for {
		// ReadRequest allocates its Request before reading the first byte,
		// so the terminal EOF call of every conversation would produce one
		// dead Request; a peek keeps exhausted input allocation-free.
		if _, err := p.br.Peek(1); err != nil {
			p.reqs = out
			return out
		}
		offset := p.cr.n - p.br.Buffered()
		req, err := http.ReadRequest(p.br)
		if err != nil {
			p.reqs = out
			return out
		}
		// Drain the request body, keeping only its size: uploaded bytes are
		// the exfiltration volume of post-infection dialogues.
		n, err := io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
		out = append(out, reqMsg{req: req, offset: offset, bodySize: int(n)})
		if err != nil {
			p.reqs = out
			return out
		}
	}
}

// responses parses consecutive HTTP responses from data into the parser's
// reused slice. Each response is matched positionally against the request
// list so HEAD and status-only semantics resolve correctly.
//
//dynalint:hotpath
func (p *streamParser) responses(data []byte, reqs []reqMsg) []respMsg {
	p.start(data)
	out := p.resps[:0]
	for i := 0; ; i++ {
		// Same dead-allocation avoidance as the request loop: ReadResponse
		// builds its Response before touching the input.
		if _, err := p.br.Peek(1); err != nil {
			p.resps = out
			return out
		}
		offset := p.cr.n - p.br.Buffered()
		var req *http.Request
		if i < len(reqs) {
			req = reqs[i].req
		}
		resp, err := http.ReadResponse(p.br, req)
		if err != nil {
			p.resps = out
			return out
		}
		bodyStart := p.cr.n - p.br.Buffered()
		body, bodyErr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		size := len(body)
		aliased := false
		if bodyErr != nil && size == 0 && bodyStart < len(data) {
			// The framing was unusable from the first body byte (e.g. a
			// garbage chunk-size line): degrade to the raw stream remainder
			// so the transaction keeps its payload evidence instead of
			// reporting an empty body.
			body = data[bodyStart:]
			size = len(body)
			aliased = true
		}
		body = decodeContent(body, resp.Header.Get("Content-Encoding"))
		if len(body) > maxRetainedBody {
			body = body[:maxRetainedBody]
		}
		if aliased {
			// The degraded body still points into the stream buffer, which
			// may belong to a pooled assembler arena; detach the retained
			// (truncation-bounded) prefix so the Transaction outlives it.
			body = detachBody(body)
		}
		out = append(out, respMsg{resp: resp, offset: offset, body: body, bodySize: size})
		if bodyErr != nil {
			// Truncated body (capture cut mid-transfer): keep the prefix, stop.
			p.resps = out
			return out
		}
	}
}

// detachBody copies a degraded body out of the stream buffer. Every other
// body path allocates fresh bytes (io.ReadAll, content decoding); this one
// is the rare malformed-framing fallback, so the copy is cold and bounded
// by the maxRetainedBody truncation applied before the call.
func detachBody(body []byte) []byte {
	if len(body) == 0 {
		return nil
	}
	out := make([]byte, len(body))
	copy(out, body)
	return out
}

// decodeContent undoes gzip/deflate content encodings so redirect sniffing
// sees plaintext. The reported payload size stays the on-the-wire size;
// only the retained body is decoded. Undecodable bodies are kept raw.
func decodeContent(body []byte, encoding string) []byte {
	switch strings.ToLower(strings.TrimSpace(encoding)) {
	case "gzip", "x-gzip":
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return body
		}
		defer zr.Close()
		plain, err := io.ReadAll(io.LimitReader(zr, maxRetainedBody+1))
		if err != nil && len(plain) == 0 {
			return body
		}
		return plain
	case "deflate":
		fr := flate.NewReader(bytes.NewReader(body))
		defer fr.Close()
		plain, err := io.ReadAll(io.LimitReader(fr, maxRetainedBody+1))
		if err != nil && len(plain) == 0 {
			return body
		}
		return plain
	default:
		return body
	}
}

// ExtractPair parses the two directions of one TCP conversation into
// transactions. c2s must be the client-to-server stream; s2c may be nil for
// a capture that recorded only requests. Unmatched requests keep a zero
// StatusCode.
func ExtractPair(c2s, s2c *pcap.Stream) []Transaction {
	return ExtractPairInto(nil, c2s, s2c)
}

// ExtractPairInto appends the conversation's transactions to dst and
// returns the extended slice. The parse state (reader stack and message
// slices) comes from a pool, so steady-state ingestion of many
// conversations stops allocating per-stream scaffolding; bulk extraction
// (ExtractAll) also reuses one destination slice across conversations.
//
//dynalint:hotpath
func ExtractPairInto(dst []Transaction, c2s, s2c *pcap.Stream) []Transaction {
	start := parseClock()
	p := parserPool.Get().(*streamParser)
	defer p.release()
	payloadBytes := int64(len(c2s.Data))
	reqs := p.requests(c2s.Data)
	var resps []respMsg
	if s2c != nil {
		payloadBytes += int64(len(s2c.Data))
		resps = p.responses(s2c.Data, reqs)
	}
	n := len(resps)
	out := dst
	if rem := len(reqs) - (cap(out) - len(out)); rem > 0 {
		grown := make([]Transaction, len(out), len(out)+len(reqs))
		copy(grown, out)
		out = grown
	}
	for i, rm := range reqs {
		tx := Transaction{
			ClientIP:    c2s.Key.SrcIP,
			ServerIP:    c2s.Key.DstIP,
			ClientPort:  c2s.Key.SrcPort,
			ServerPort:  c2s.Key.DstPort,
			Method:      rm.req.Method,
			URI:         rm.req.URL.RequestURI(),
			Host:        rm.req.Host,
			ReqHdr:      rm.req.Header,
			ReqTime:     c2s.TimeAt(rm.offset),
			ReqBodySize: rm.bodySize,
		}
		if i < n {
			pm := resps[i]
			tx.StatusCode = pm.resp.StatusCode
			tx.RespHdr = pm.resp.Header
			tx.RespTime = s2c.TimeAt(pm.offset)
			tx.ContentType = pm.resp.Header.Get("Content-Type")
			tx.BodySize = pm.bodySize
			tx.Body = pm.body
		} else {
			tx.RespHdr = http.Header{}
		}
		out = append(out, tx) //dynalint:ignore hotalloc capacity for every request is ensured by the grow block above
	}
	elapsed := parseClock().Sub(start).Seconds()
	parseSeconds.Observe(elapsed)
	if tb := parseTrace.Load(); tb != nil {
		tb.t.ObserveStage(tb.stage, elapsed)
	}
	parseBytes.Add(payloadBytes)
	parseTransactions.Add(int64(len(reqs)))
	return out
}

type convKey struct {
	aIP, bIP     netip.Addr
	aPort, bPort uint16
}

func canonicalConvKey(k pcap.FlowKey) convKey {
	if c := k.SrcIP.Compare(k.DstIP); c < 0 || (c == 0 && k.SrcPort <= k.DstPort) {
		return convKey{aIP: k.SrcIP, bIP: k.DstIP, aPort: k.SrcPort, bPort: k.DstPort}
	}
	return convKey{aIP: k.DstIP, bIP: k.SrcIP, aPort: k.DstPort, bPort: k.SrcPort}
}

// ExtractAll pairs the directions of every conversation in streams and
// returns all transactions sorted by request time. The client side of a
// conversation is recognized by its bytes starting with an HTTP method; if
// both or neither direction qualifies, the direction targeting the lower
// port is assumed to be client-to-server (clients use ephemeral high
// ports).
func ExtractAll(streams []*pcap.Stream) []Transaction {
	groups := make(map[convKey][]*pcap.Stream)
	var order []convKey
	for _, s := range streams {
		k := canonicalConvKey(s.Key)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	var all []Transaction
	for _, k := range order {
		ss := groups[k]
		var c2s, s2c *pcap.Stream
		if len(ss) == 1 {
			if looksLikeRequest(ss[0].Data) {
				c2s = ss[0]
			}
		} else {
			a, b := ss[0], ss[1]
			aReq, bReq := looksLikeRequest(a.Data), looksLikeRequest(b.Data)
			switch {
			case aReq && !bReq:
				c2s, s2c = a, b
			case bReq && !aReq:
				c2s, s2c = b, a
			case a.Key.DstPort < a.Key.SrcPort:
				c2s, s2c = a, b
			default:
				c2s, s2c = b, a
			}
		}
		if c2s == nil {
			continue
		}
		all = ExtractPairInto(all, c2s, s2c)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].ReqTime.Before(all[j].ReqTime) })
	return all
}

var methodPrefixes = []string{"GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "PATCH ", "TRACE ", "CONNECT "}

// looksLikeRequest reports whether data starts with an HTTP method token.
func looksLikeRequest(data []byte) bool {
	for _, m := range methodPrefixes {
		if bytes.HasPrefix(data, []byte(m)) {
			return true
		}
	}
	return false
}

// FromPackets is the end-to-end convenience: decode packets, reassemble
// TCP, and extract every HTTP transaction in the capture.
func FromPackets(pkts []pcap.Packet) []Transaction {
	streams, asm := pcap.AssembleStreamsInto(nil, pkts)
	defer asm.Release()
	return ExtractAll(streams)
}
