package httpstream

import (
	"strings"
	"testing"

	"dynaminer/internal/pcap"
)

// TestPooledParseSteadyStateAllocs pins the zero-alloc contract of the
// pooled parse scaffolding: once the pool is warm, a conversation whose
// directions carry no messages runs ExtractPairInto with ZERO allocations
// — the bytes.Reader/countingReader/bufio stack, the reqMsg/respMsg
// slices, and the metrics all come from reuse. (Per parsed message,
// net/http's ReadRequest/ReadResponse still allocate the Request and
// Header objects the Transaction hands to its consumers — those leave
// with the Transaction and are not the parser's to pool — which is why
// the steady-state probe is an empty conversation, not a parsed one.)
func TestPooledParseSteadyStateAllocs(t *testing.T) {
	c2s, s2c := buildConv(simpleGet, simpleResp)
	empty := *c2s
	empty.Data = nil
	emptyResp := *s2c
	emptyResp.Data = nil
	dst := make([]Transaction, 0, 8)
	// Warm the pool and any lazy metric state.
	dst = ExtractPairInto(dst[:0], &empty, &emptyResp)
	if n := testing.AllocsPerRun(200, func() {
		dst = ExtractPairInto(dst[:0], &empty, &emptyResp)
	}); n != 0 {
		t.Fatalf("pooled parse scaffolding allocates %v per conversation, want 0", n)
	}
}

// TestExtractPairIntoAppends pins the Into contract: the destination is
// extended in place (no reallocation when capacity suffices) and prior
// contents survive.
func TestExtractPairIntoAppends(t *testing.T) {
	c2s, s2c := buildConv(simpleGet, simpleResp)
	dst := make([]Transaction, 0, 4)
	dst = ExtractPairInto(dst, c2s, s2c)
	if len(dst) != 1 {
		t.Fatalf("first extract: %d transactions, want 1", len(dst))
	}
	first := dst[0]
	out := ExtractPairInto(dst, c2s, s2c)
	if len(out) != 2 {
		t.Fatalf("second extract: %d transactions, want 2", len(out))
	}
	if &out[0] != &dst[0] {
		t.Fatal("ExtractPairInto reallocated a dst with sufficient capacity")
	}
	if out[0].Host != first.Host || out[1].Host != first.Host {
		t.Fatalf("appended transactions corrupted: %q, %q, want %q", out[0].Host, out[1].Host, first.Host)
	}
}

// TestPooledParserIsolation replays two different conversations through
// the pool back to back and checks nothing leaks between them: the second
// parse must see exactly its own messages even though it reuses the
// first's slices.
func TestPooledParserIsolation(t *testing.T) {
	mkReq := func(host string, n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString("GET /p HTTP/1.1\r\nHost: " + host + "\r\n\r\n")
		}
		return sb.String()
	}
	mkResp := func(n int) string {
		return strings.Repeat("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok", n)
	}
	big, bigResp := buildConv(mkReq("big.example", 5), mkResp(5))
	small, smallResp := buildConv(mkReq("small.example", 2), mkResp(2))
	if got := ExtractPair(big, bigResp); len(got) != 5 {
		t.Fatalf("big conversation: %d transactions, want 5", len(got))
	}
	txs := ExtractPair(small, smallResp)
	if len(txs) != 2 {
		t.Fatalf("small conversation after big: %d transactions, want 2", len(txs))
	}
	for i, tx := range txs {
		if tx.Host != "small.example" {
			t.Fatalf("transaction %d has host %q leaked from a previous parse", i, tx.Host)
		}
		if tx.StatusCode != 200 {
			t.Fatalf("transaction %d lost its response: status %d", i, tx.StatusCode)
		}
	}
}

// BenchmarkExtractPairPooled tracks the per-conversation parse cost on a
// pipelined 8-message conversation (allocs/op is the number to watch: the
// pooled scaffolding contributes none).
func BenchmarkExtractPairPooled(b *testing.B) {
	var reqs, resps strings.Builder
	for i := 0; i < 8; i++ {
		reqs.WriteString(simpleGet)
		resps.WriteString(simpleResp)
	}
	c2s, s2c := buildConv(reqs.String(), resps.String())
	dst := make([]Transaction, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ExtractPairInto(dst[:0], c2s, s2c)
	}
	if len(dst) != 8 {
		b.Fatalf("extracted %d transactions, want 8", len(dst))
	}
	_ = pcap.Stream{}
}
