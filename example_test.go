package dynaminer_test

import (
	"fmt"
	"log"

	"dynaminer"
)

// ExampleTrain shows the Stage 1 workflow: synthesize ground truth, train
// the ERF, and classify an unseen conversation.
func ExampleTrain() {
	corpus := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 1, Infections: 150, Benign: 180})
	clf, err := dynaminer.Train(corpus, dynaminer.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	unseen := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 42, Infections: 1, Benign: 1})
	for i := range unseen {
		w := dynaminer.EpisodeWCG(&unseen[i])
		fmt.Printf("truth=%v verdict=%v\n", unseen[i].Infection, clf.IsInfection(w))
	}
	// Output:
	// truth=true verdict=true
	// truth=false verdict=false
}

// ExampleBuildWCG demonstrates graph construction and feature extraction
// from a transaction stream.
func ExampleBuildWCG() {
	eps := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 7, Infections: 1, Benign: 0})
	w := dynaminer.BuildWCG(eps[0].Txs)
	v := dynaminer.ExtractFeatures(w)
	fmt.Printf("features=%d f1=%s\n", len(v), dynaminer.FeatureName(0))
	fmt.Printf("order>0=%v size>0=%v\n", w.Order() > 0, w.Size() > 0)
	// Output:
	// features=37 f1=Origin
	// order>0=true size>0=true
}

// ExampleNewMonitor replays an infection through the on-the-wire engine.
func ExampleNewMonitor() {
	corpus := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 1, Infections: 150, Benign: 180})
	clf, err := dynaminer.TrainForMonitoring(corpus, dynaminer.TrainConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var infection *dynaminer.Episode
	fresh := dynaminer.Corpus(dynaminer.CorpusConfig{Seed: 1234, Infections: 5, Benign: 0})
	for i := range fresh {
		if fresh[i].Infection {
			infection = &fresh[i]
			break
		}
	}
	m := dynaminer.NewMonitor(dynaminer.MonitorConfig{RedirectThreshold: 1}, clf)
	alerts := m.ProcessAll(infection.Txs)
	fmt.Printf("alerted=%v clues=%v\n", len(alerts) > 0, m.Stats().CluesFired > 0)
	// Output:
	// alerted=true clues=true
}
