package dynaminer

// PR-9 acceptance tests for the model lifecycle: the admin reload and
// rollback endpoints drive atomic hot-swaps end to end, checkpoints and
// journal replay rebuild a restarted monitor whose subsequent alerts are
// bit-identical, and Shutdown drains to stable storage.

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// postLifecycle POSTs an admin lifecycle endpoint and decodes the
// {"version": ..., "error": ...} reply.
func postLifecycle(t *testing.T, url string) (int, reloadReply) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply reloadReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("%s: undecodable reply: %v", url, err)
	}
	return resp.StatusCode, reply
}

// TestMonitorReloadEndpoints exercises the full admin control surface:
// method and argument validation, rejection of unreadable artifacts with
// the serving model untouched, a clean hot-swap via POST /reload, the
// configured default artifact path, and rollback semantics including the
// no-previous-model conflict.
func TestMonitorReloadEndpoints(t *testing.T) {
	eps, clf := obsFixture(t)
	next, err := TrainForMonitoring(eps, TrainConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	nextPath := filepath.Join(dir, "next.dmfb")
	if err := next.SaveBlobFile(nextPath); err != nil {
		t.Fatal(err)
	}

	m := NewMonitor(MonitorConfig{RedirectThreshold: 1}, clf)
	defer m.Close()
	addr, err := m.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	v1 := m.ModelVersion()

	// Non-POST and missing-path requests are refused without a swap.
	if resp, err := http.Get(base + "/reload"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload = %v, %v; want 405", resp.StatusCode, err)
	}
	if code, _ := postLifecycle(t, base+"/reload"); code != http.StatusBadRequest {
		t.Fatalf("POST /reload with no path = %d, want 400", code)
	}
	// Rollback before any reload: nothing to reinstate.
	if code, _ := postLifecycle(t, base+"/rollback"); code != http.StatusConflict {
		t.Fatalf("POST /rollback with no previous model = %d, want 409", code)
	}
	// An unreadable artifact is rejected pre-swap; serving is untouched.
	if code, reply := postLifecycle(t, base+"/reload?path="+filepath.Join(dir, "missing.dmfb")); code != http.StatusUnprocessableEntity || reply.Error == "" {
		t.Fatalf("POST /reload missing file = %d %+v, want 422 with an error", code, reply)
	}
	if m.ModelVersion() != v1 {
		t.Fatalf("rejected reload moved the serving version: %s", m.ModelVersion())
	}

	// A clean hot-swap answers with the now-serving version.
	code, reply := postLifecycle(t, base+"/reload?path="+nextPath)
	if code != http.StatusOK {
		t.Fatalf("POST /reload = %d (%s), want 200", code, reply.Error)
	}
	v2 := m.ModelVersion()
	if reply.Version != v2.String() || v2 == v1 {
		t.Fatalf("reload reply %q, engine serves %s (was %s)", reply.Version, v2, v1)
	}
	if v2.CRC != next.FlatForest().BlobCRC() {
		t.Fatalf("served CRC %08x, artifact CRC %08x", v2.CRC, next.FlatForest().BlobCRC())
	}

	// Rollback reinstates v1 under its original identity; a second
	// rollback is its own inverse.
	if code, reply := postLifecycle(t, base+"/rollback"); code != http.StatusOK || reply.Version != v1.String() {
		t.Fatalf("POST /rollback = %d %+v, want 200 %s", code, reply, v1)
	}
	if code, reply := postLifecycle(t, base+"/rollback"); code != http.StatusOK || reply.Version != v2.String() {
		t.Fatalf("second rollback = %d %+v, want 200 %s", code, reply, v2)
	}

	// With a configured default artifact, a bare POST /reload works.
	m.SetModelPath(nextPath)
	if code, _ := postLifecycle(t, base+"/reload"); code != http.StatusOK {
		t.Fatalf("POST /reload with default path = %d, want 200", code)
	}
}

// TestMonitorCheckpointRecovery is the restart acceptance: a monitor
// checkpoints mid-stream and dies; a fresh monitor recovers from the
// checkpoint plus journal and its subsequent alerts are bit-identical to
// an uninterrupted run's.
func TestMonitorCheckpointRecovery(t *testing.T) {
	eps, clf := obsFixture(t)
	stream := obsStream(eps)
	mid := len(stream) / 2
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "state.dmcp")
	journalPath := filepath.Join(dir, "alerts.jsonl")
	cfg := MonitorConfig{RedirectThreshold: 1, Shards: 2}

	// The reference: one process, never interrupted.
	uninterrupted := NewMonitor(cfg, clf)
	uninterrupted.ProcessAll(stream[:mid])
	wantTail := uninterrupted.ProcessAll(stream[mid:])
	if len(wantTail) == 0 {
		t.Fatal("no post-checkpoint alerts; the recovery differential is vacuous")
	}

	// The doomed process: journals, checkpoints, dies.
	journal, err := NewJournalWith(journalPath, JournalConfig{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := cfg
	dcfg.Journal = journal
	doomed := NewMonitor(dcfg, clf)
	doomed.ProcessAll(stream[:mid])
	if err := doomed.WriteCheckpoint(ckptPath); err != nil {
		t.Fatal(err)
	}
	wantWatch := len(doomed.Watched())
	if v := doomed.Registry().CounterValue("dynaminer_checkpoints_total"); v != 1 {
		t.Fatalf("checkpoints counter = %v, want 1", v)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	// The artifact is introspectable without a restore.
	info, err := ReadCheckpointInfoFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Watching != wantWatch || info.TxSeen != int64(mid) || info.Shards != 2 {
		t.Fatalf("checkpoint info %+v; want %d watches, %d txs, 2 shards", info, wantWatch, mid)
	}
	if info.ModelVersion.CRC != clf.FlatForest().BlobCRC() {
		t.Fatalf("checkpoint model CRC %08x, classifier CRC %08x", info.ModelVersion.CRC, clf.FlatForest().BlobCRC())
	}

	// The restarted process.
	restored := NewMonitor(cfg, clf)
	watches, marked, err := restored.Recover(ckptPath, journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if watches != wantWatch {
		t.Fatalf("recovered %d watches, pre-kill process had %d", watches, wantWatch)
	}
	if marked < 0 || marked > len(stream) {
		t.Fatalf("implausible journal-replay mark count %d", marked)
	}
	gotTail := restored.ProcessAll(stream[mid:])
	if len(gotTail) != len(wantTail) {
		t.Fatalf("post-recovery alerts = %d, uninterrupted run raised %d", len(gotTail), len(wantTail))
	}
	for i := range wantTail {
		w, g := wantTail[i], gotTail[i]
		if math.Float64bits(w.Score) != math.Float64bits(g.Score) ||
			w.Client != g.Client || w.ClusterID != g.ClusterID || !w.Time.Equal(g.Time) ||
			w.TriggerHost != g.TriggerHost || w.TriggerPayload != g.TriggerPayload {
			t.Fatalf("post-recovery alert %d diverged:\n got %+v\nwant %+v", i, g, w)
		}
	}

	// Cold starts are not errors: missing artifacts recover to nothing.
	cold := NewMonitor(cfg, clf)
	if w, mk, err := cold.Recover(filepath.Join(dir, "no.dmcp"), filepath.Join(dir, "no.jsonl")); err != nil || w != 0 || mk != 0 {
		t.Fatalf("cold start = %d, %d, %v; want 0, 0, nil", w, mk, err)
	}
	// A corrupt checkpoint is an error, not a half-restore.
	data, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	badPath := filepath.Join(dir, "bad.dmcp")
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewMonitor(cfg, clf).Recover(badPath, ""); err == nil {
		t.Fatal("corrupt checkpoint recovered")
	}
}

// TestMonitorCheckpointerAndShutdown covers the background checkpointer
// and the graceful drain: Shutdown stops the janitor, checkpointer and
// admin, writes a final checkpoint, and syncs the journal.
func TestMonitorCheckpointerAndShutdown(t *testing.T) {
	eps, clf := obsFixture(t)
	stream := obsStream(eps)
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "state.dmcp")
	journalPath := filepath.Join(dir, "alerts.jsonl")

	journal, err := NewJournalWith(journalPath, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MonitorConfig{RedirectThreshold: 1, Shards: 2}
	cfg.Journal = journal
	m := NewMonitor(cfg, clf)
	m.StartJanitor(time.Hour)
	m.StartCheckpointer(ckptPath, 20*time.Millisecond)
	m.StartCheckpointer(ckptPath, 20*time.Millisecond) // idempotent
	alerts := m.ProcessAll(stream)
	if len(alerts) == 0 {
		t.Fatal("seeded run raised no alerts")
	}

	// The periodic checkpointer lands at least one checkpoint on its own.
	deadline := time.Now().Add(5 * time.Second)
	for m.Registry().CounterValue("dynaminer_checkpoints_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never wrote a checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := m.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint reflects the full stream.
	info, err := ReadCheckpointInfoFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.TxSeen != int64(len(stream)) {
		t.Fatalf("final checkpoint covers %d transactions, monitor saw %d", info.TxSeen, len(stream))
	}
	// The journal is complete on disk: one record per alert.
	recs, err := ReadJournalFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(alerts) {
		t.Fatalf("journal holds %d records for %d alerts", len(recs), len(alerts))
	}
	// Shutdown is idempotent and leaves the monitor closeable.
	if err := m.Shutdown(); err != nil {
		t.Fatal(err)
	}
	m.Close()
}
