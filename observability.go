package dynaminer

import (
	"io"
	"net/http"

	"dynaminer/internal/obs"
)

// Re-exported observability types (see internal/obs and DESIGN.md §10).
type (
	// MetricsRegistry holds named metrics; pass one as
	// MonitorConfig.Metrics to share a registry across instances, or let
	// each Monitor own a private one.
	MetricsRegistry = obs.Registry
	// MetricSnapshot is one metric's point-in-time value, as served by
	// the admin /snapshot endpoint.
	MetricSnapshot = obs.MetricSnapshot
	// Journal is the append-only JSONL alert provenance sink; pass one as
	// MonitorConfig.Journal.
	Journal = obs.Journal
	// AlertRecord is one journal line: everything the classifier knew
	// when it raised an alert.
	AlertRecord = obs.AlertRecord
	// JournalConfig tunes journal durability (fsync policy) and rotation;
	// the zero value preserves NewJournal's historical behavior.
	JournalConfig = obs.JournalConfig
	// AdminServer serves the observability endpoints: Prometheus
	// /metrics, /healthz, a JSON /snapshot, and /debug/pprof/.
	AdminServer = obs.Admin
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetricsRegistry returns the process-wide registry that owning-
// instance-free library packages (e.g. the HTTP stream parsers) publish
// on.
func DefaultMetricsRegistry() *MetricsRegistry { return obs.Default() }

// StartAdmin serves the observability endpoints for the given registries
// on addr. Monitor.StartAdmin is the usual entry point; this form suits
// deployments that compose their own registry set (e.g. a Proxy's
// registry plus the default). Nothing listens unless this is called.
func StartAdmin(addr string, regs ...*MetricsRegistry) (*AdminServer, error) {
	return obs.StartAdmin(addr, regs...)
}

// StartAdminHandlers is StartAdmin plus caller-supplied endpoints (e.g.
// ReloadHandlers); extra patterns never shadow the built-in ones.
func StartAdminHandlers(addr string, extra map[string]http.Handler, regs ...*MetricsRegistry) (*AdminServer, error) {
	return obs.StartAdminHandlers(addr, extra, regs...)
}

// NewJournal opens (creating, append-mode) a JSONL alert journal file.
func NewJournal(path string) (*Journal, error) { return obs.NewJournal(path) }

// NewJournalWith opens a JSONL alert journal file with an explicit
// durability and rotation policy.
func NewJournalWith(path string, cfg JournalConfig) (*Journal, error) {
	return obs.NewJournalWith(path, cfg)
}

// ReadJournal decodes a JSONL alert journal stream.
func ReadJournal(r io.Reader) ([]AlertRecord, error) { return obs.ReadJournal(r) }

// ReadJournalFile decodes a JSONL alert journal by path.
func ReadJournalFile(path string) ([]AlertRecord, error) { return obs.ReadJournalFile(path) }
