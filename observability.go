package dynaminer

import (
	"io"
	"net/http"
	"time"

	"dynaminer/internal/httpstream"
	"dynaminer/internal/obs"
	"dynaminer/internal/pcap"
)

// Re-exported observability types (see internal/obs and DESIGN.md §10).
type (
	// MetricsRegistry holds named metrics; pass one as
	// MonitorConfig.Metrics to share a registry across instances, or let
	// each Monitor own a private one.
	MetricsRegistry = obs.Registry
	// MetricSnapshot is one metric's point-in-time value, as served by
	// the admin /snapshot endpoint.
	MetricSnapshot = obs.MetricSnapshot
	// Journal is the append-only JSONL alert provenance sink; pass one as
	// MonitorConfig.Journal.
	Journal = obs.Journal
	// AlertRecord is one journal line: everything the classifier knew
	// when it raised an alert.
	AlertRecord = obs.AlertRecord
	// JournalConfig tunes journal durability (fsync policy) and rotation;
	// the zero value preserves NewJournal's historical behavior.
	JournalConfig = obs.JournalConfig
	// AdminServer serves the observability endpoints: Prometheus
	// /metrics, /healthz, a JSON /snapshot, and /debug/pprof/.
	AdminServer = obs.Admin
	// AdminOptions extends the admin surface: extra endpoints, a
	// readiness source for /healthz, and a tracer for /trace.
	AdminOptions = obs.AdminOptions
	// Tracer records per-transaction span trees across the wire path —
	// reassembly, parse, feature extraction, scoring, journaling — into a
	// fixed-size ring with head sampling plus always-keep promotion of
	// slow and alert-raising transactions. See DESIGN.md §15.
	Tracer = obs.Tracer
	// TraceConfig tunes a Tracer: sampling period, ring size, slow-trace
	// promotion factor.
	TraceConfig = obs.TraceConfig
	// TraceSnapshot is one exported trace: its ID, promotion reasons, and
	// span tree.
	TraceSnapshot = obs.TraceSnapshot
	// HealthStatus is the /healthz readiness report: per-condition
	// booleans plus the serving model generation.
	HealthStatus = obs.HealthStatus
	// RuntimeCollector publishes process health telemetry (goroutines,
	// heap, GC pause and scheduler-latency quantiles) as registry gauges.
	RuntimeCollector = obs.RuntimeCollector
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetricsRegistry returns the process-wide registry that owning-
// instance-free library packages (e.g. the HTTP stream parsers) publish
// on.
func DefaultMetricsRegistry() *MetricsRegistry { return obs.Default() }

// StartAdmin serves the observability endpoints for the given registries
// on addr. Monitor.StartAdmin is the usual entry point; this form suits
// deployments that compose their own registry set (e.g. a Proxy's
// registry plus the default). Nothing listens unless this is called.
func StartAdmin(addr string, regs ...*MetricsRegistry) (*AdminServer, error) {
	return obs.StartAdmin(addr, regs...)
}

// StartAdminHandlers is StartAdmin plus caller-supplied endpoints (e.g.
// ReloadHandlers); extra patterns never shadow the built-in ones.
func StartAdminHandlers(addr string, extra map[string]http.Handler, regs ...*MetricsRegistry) (*AdminServer, error) {
	return obs.StartAdminHandlers(addr, extra, regs...)
}

// StartAdminWith is the full-surface admin form: extra endpoints, a
// readiness source for /healthz (JSON conditions, 503 while any holds),
// and a tracer for /trace. While the server runs, a runtime health
// collector refreshes process gauges on the first registry.
func StartAdminWith(addr string, opts AdminOptions, regs ...*MetricsRegistry) (*AdminServer, error) {
	return obs.StartAdminWith(addr, opts, regs...)
}

// NewTracer returns a pipeline tracer registering its stage histograms
// and self-telemetry on reg (nil selects a private registry). Pass it as
// MonitorConfig.Tracer / ProxyConfig.Detector.Tracer, and to
// SetCaptureTracer for the capture layers.
func NewTracer(reg *MetricsRegistry, cfg TraceConfig) *Tracer { return obs.NewTracer(reg, cfg) }

// TraceHandler serves a tracer's ring over HTTP: Chrome trace-event JSON
// by default (load it in chrome://tracing or Perfetto), ?format=flame
// for a human-readable summary, ?id=N for one trace. Monitor.StartAdmin
// mounts it on /trace automatically when the monitor has a tracer.
func TraceHandler(t *Tracer) http.Handler { return obs.TraceHandler(t) }

// SetCaptureTracer points the owning-instance-free capture layers — pcap
// reassembly and HTTP stream parsing — at a pipeline tracer, so their
// batch timing lands in the pcap.reassemble and httpstream.parse stage
// histograms. nil detaches. The detector and proxy layers take their
// tracer via config instead.
func SetCaptureTracer(t *Tracer) {
	pcap.SetTracer(t)
	httpstream.SetTracer(t)
}

// StartRuntimeCollector publishes runtime health telemetry on reg,
// refreshed every interval (zero selects 10s) until Close. Monitor and
// proxy admin servers run one automatically; this standalone form suits
// deployments without an admin listener.
func StartRuntimeCollector(reg *MetricsRegistry, interval time.Duration) *RuntimeCollector {
	return obs.StartRuntimeCollector(reg, interval)
}

// NewJournal opens (creating, append-mode) a JSONL alert journal file.
func NewJournal(path string) (*Journal, error) { return obs.NewJournal(path) }

// NewJournalWith opens a JSONL alert journal file with an explicit
// durability and rotation policy.
func NewJournalWith(path string, cfg JournalConfig) (*Journal, error) {
	return obs.NewJournalWith(path, cfg)
}

// ReadJournal decodes a JSONL alert journal stream.
func ReadJournal(r io.Reader) ([]AlertRecord, error) { return obs.ReadJournal(r) }

// ReadJournalFile decodes a JSONL alert journal by path.
func ReadJournalFile(path string) ([]AlertRecord, error) { return obs.ReadJournalFile(path) }
