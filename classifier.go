package dynaminer

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"dynaminer/internal/core"
	"dynaminer/internal/detector"
	"dynaminer/internal/features"
	"dynaminer/internal/ml"
)

// TrainConfig parameterizes classifier training. The zero value selects
// the paper's best configuration: N_t = 20 trees with N_f = log2(37)+1
// candidate features per split.
type TrainConfig struct {
	// NumTrees is the ensemble size (N_t); 0 selects 20.
	NumTrees int
	// Seed drives bootstrap and feature subsampling; equal seeds and data
	// give identical classifiers.
	Seed int64
}

// Classifier is a trained ERF model over the 37 WCG features. It always
// carries the flattened struct-of-arrays form (the one the detector and
// every scoring method traverse); the pointer forest is retained when the
// model was trained or JSON-loaded in this process and is nil for models
// loaded from a flat blob, whose artifact is already the flat layout.
type Classifier struct {
	forest *ml.Forest     // nil when loaded from a flat blob
	flat   *ml.FlatForest // never nil
}

// fromForest wraps a pointer forest, flattening once up front.
func fromForest(f *ml.Forest) *Classifier {
	return &Classifier{forest: f, flat: f.Flatten()}
}

// conversations adapts a corpus to the core training pipelines.
func conversations(episodes []Episode) []core.LabeledConversation {
	convs := make([]core.LabeledConversation, len(episodes))
	for i := range episodes {
		convs[i] = core.LabeledConversation{Infection: episodes[i].Infection, Txs: episodes[i].Txs}
	}
	return convs
}

// Train fits an ERF classifier on a labeled episode corpus (Stage 1:
// offline whole-trace classification).
func Train(episodes []Episode, cfg TrainConfig) (*Classifier, error) {
	forest, err := core.TrainOffline(conversations(episodes), core.TrainConfig{NumTrees: cfg.NumTrees, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return fromForest(forest), nil
}

// TrainForMonitoring fits an ERF on the corpus as the on-the-wire stage
// sees it: every episode is replayed through the clue heuristic and the
// potential-infection WCG subsets become the training samples, so the
// trained model scores exactly the WCG representation NewMonitor builds.
// Use Train for offline (whole-trace) classification and this for live
// deployment.
func TrainForMonitoring(episodes []Episode, cfg TrainConfig) (*Classifier, error) {
	forest, err := core.TrainMonitor(conversations(episodes), core.TrainConfig{NumTrees: cfg.NumTrees, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return fromForest(forest), nil
}

// EpisodeDataset converts a labeled corpus into a feature matrix.
func EpisodeDataset(episodes []Episode) *ml.Dataset {
	return core.OfflineDataset(conversations(episodes))
}

// Score returns the ensemble-averaged probability that the WCG is a
// malware infection.
func (c *Classifier) Score(w *WCG) float64 {
	return c.flat.Score(features.Extract(w))
}

// IsInfection classifies the WCG with the standard 0.5 threshold.
func (c *Classifier) IsInfection(w *WCG) bool { return c.Score(w) > 0.5 }

// ScoreFeatures scores a precomputed feature vector (the detector's path).
func (c *Classifier) ScoreFeatures(x []float64) float64 { return c.flat.Score(x) }

// Forest exposes the underlying pointer ensemble for evaluation tooling.
// It is nil for classifiers loaded from a flat blob, which carry only the
// flattened form; FlatForest is always available and scores identically.
func (c *Classifier) Forest() *ml.Forest { return c.forest }

// FlatForest exposes the flattened ensemble every scoring path uses.
func (c *Classifier) FlatForest() *ml.FlatForest { return c.flat }

// scorer is the model handed to detector engines: always the flat form,
// so engine construction never re-flattens.
func (c *Classifier) scorer() detector.Scorer { return c.flat }

// Save persists the trained model as JSON — byte-identical whether the
// classifier was trained, JSON-loaded, or blob-loaded.
func (c *Classifier) Save(w io.Writer) error { return c.flat.Save(w) }

// SaveFile persists the trained model to a file path.
func (c *Classifier) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save model: %w", err)
	}
	defer f.Close()
	return c.Save(f)
}

// SaveBlob persists the trained model as the flat binary blob — the
// zero-parse artifact Load reads back without JSON decoding (and
// ml.LoadFlatBlobMapped can alias straight off a mapped file).
func (c *Classifier) SaveBlob(w io.Writer) error { return c.flat.SaveFlatBlob(w) }

// SaveBlobFile persists the flat binary blob to a file path.
func (c *Classifier) SaveBlobFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save model blob: %w", err)
	}
	defer f.Close()
	return c.SaveBlob(f)
}

// Load reads a model previously written by Save or SaveBlob, sniffing the
// format from the leading bytes: the flat-blob magic selects the binary
// loader, anything else is parsed as JSON.
func Load(r io.Reader) (*Classifier, error) {
	br := bufio.NewReader(r)
	if prefix, err := br.Peek(4); err == nil && ml.IsFlatBlob(prefix) {
		flat, err := ml.LoadFlatBlob(br)
		if err != nil {
			return nil, err
		}
		return &Classifier{flat: flat}, nil
	}
	forest, err := ml.LoadForest(br)
	if err != nil {
		return nil, err
	}
	return fromForest(forest), nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load model: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// ModelInfo summarizes a trained model's shape and configuration.
type ModelInfo struct {
	Trees    int
	Nodes    int
	Features int
	Config   ml.ForestConfig
}

// Info reports the model's shape and training configuration.
func (c *Classifier) Info() ModelInfo {
	return ModelInfo{
		Trees:    c.flat.NumTrees(),
		Nodes:    c.flat.NumNodes(),
		Features: c.flat.NumFeatures(),
		Config:   c.flat.Config(),
	}
}
