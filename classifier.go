package dynaminer

import (
	"fmt"
	"io"
	"os"

	"dynaminer/internal/core"
	"dynaminer/internal/features"
	"dynaminer/internal/ml"
)

// TrainConfig parameterizes classifier training. The zero value selects
// the paper's best configuration: N_t = 20 trees with N_f = log2(37)+1
// candidate features per split.
type TrainConfig struct {
	// NumTrees is the ensemble size (N_t); 0 selects 20.
	NumTrees int
	// Seed drives bootstrap and feature subsampling; equal seeds and data
	// give identical classifiers.
	Seed int64
}

// Classifier is a trained ERF model over the 37 WCG features.
type Classifier struct {
	forest *ml.Forest
}

// conversations adapts a corpus to the core training pipelines.
func conversations(episodes []Episode) []core.LabeledConversation {
	convs := make([]core.LabeledConversation, len(episodes))
	for i := range episodes {
		convs[i] = core.LabeledConversation{Infection: episodes[i].Infection, Txs: episodes[i].Txs}
	}
	return convs
}

// Train fits an ERF classifier on a labeled episode corpus (Stage 1:
// offline whole-trace classification).
func Train(episodes []Episode, cfg TrainConfig) (*Classifier, error) {
	forest, err := core.TrainOffline(conversations(episodes), core.TrainConfig{NumTrees: cfg.NumTrees, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Classifier{forest: forest}, nil
}

// TrainForMonitoring fits an ERF on the corpus as the on-the-wire stage
// sees it: every episode is replayed through the clue heuristic and the
// potential-infection WCG subsets become the training samples, so the
// trained model scores exactly the WCG representation NewMonitor builds.
// Use Train for offline (whole-trace) classification and this for live
// deployment.
func TrainForMonitoring(episodes []Episode, cfg TrainConfig) (*Classifier, error) {
	forest, err := core.TrainMonitor(conversations(episodes), core.TrainConfig{NumTrees: cfg.NumTrees, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Classifier{forest: forest}, nil
}

// EpisodeDataset converts a labeled corpus into a feature matrix.
func EpisodeDataset(episodes []Episode) *ml.Dataset {
	return core.OfflineDataset(conversations(episodes))
}

// Score returns the ensemble-averaged probability that the WCG is a
// malware infection.
func (c *Classifier) Score(w *WCG) float64 {
	return c.forest.Score(features.Extract(w))
}

// IsInfection classifies the WCG with the standard 0.5 threshold.
func (c *Classifier) IsInfection(w *WCG) bool { return c.Score(w) > 0.5 }

// ScoreFeatures scores a precomputed feature vector (the detector's path).
func (c *Classifier) ScoreFeatures(x []float64) float64 { return c.forest.Score(x) }

// Forest exposes the underlying ensemble for evaluation tooling.
func (c *Classifier) Forest() *ml.Forest { return c.forest }

// Save persists the trained model as JSON.
func (c *Classifier) Save(w io.Writer) error { return c.forest.Save(w) }

// SaveFile persists the trained model to a file path.
func (c *Classifier) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("save model: %w", err)
	}
	defer f.Close()
	return c.Save(f)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Classifier, error) {
	forest, err := ml.LoadForest(r)
	if err != nil {
		return nil, err
	}
	return &Classifier{forest: forest}, nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load model: %w", err)
	}
	defer f.Close()
	return Load(f)
}
