package dynaminer

// PR-10 acceptance tests for pipeline tracing: every alert of a seeded
// 55-episode run links, via its journal trace_id, to a span tree in the
// ring whose stage spans nest inside the end-to-end detector.process
// span and whose stage set matches the feature path actually taken; and
// the admin surface (/metrics, /snapshot, /trace) stays well-formed
// while classification runs concurrently (exercised under -race in CI).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"dynaminer/internal/obs"
)

// TestSeededRunAlertTraceLinkage is the PR acceptance criterion on the
// full seeded corpus across two shards.
func TestSeededRunAlertTraceLinkage(t *testing.T) {
	eps, clf := obsFixture(t)
	reg := NewMetricsRegistry()
	// Promotion-only sampling: the ring holds alert traces alone, sized
	// so no alert of the run is evicted.
	tracer := NewTracer(reg, TraceConfig{Sample: 0, Ring: 4096})
	var buf bytes.Buffer
	cfg := MonitorConfig{RedirectThreshold: 1, Shards: 2, Metrics: reg, Tracer: tracer}
	cfg.Journal = obs.NewJournalWriter(&buf)
	m := NewMonitor(cfg, clf)
	alerts := m.ProcessAll(obsStream(eps))
	if len(alerts) == 0 {
		t.Fatal("seeded run raised no alerts; the linkage check is vacuous")
	}
	recs, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(alerts) {
		t.Fatalf("journal has %d records for %d alerts", len(recs), len(alerts))
	}

	for i, rec := range recs {
		if rec.TraceID == 0 {
			t.Fatalf("alert record %d carries no trace_id", i)
		}
		snap, ok := tracer.Find(rec.TraceID)
		if !ok {
			t.Fatalf("alert record %d: trace %d not in the ring", i, rec.TraceID)
		}
		if !snap.Alert {
			t.Fatalf("alert record %d: trace %d not alert-promoted", i, rec.TraceID)
		}
		if len(snap.Spans) == 0 || snap.Spans[0].Stage != "detector.process" {
			t.Fatalf("alert record %d: trace not rooted at detector.process: %+v", i, snap.Spans)
		}
		root := snap.Spans[0]
		rootEnd := root.Start + root.Dur
		const eps = 1e-6
		var childSum float64
		names := map[string]bool{}
		for j, sp := range snap.Spans {
			names[sp.Stage] = true
			if j == 0 {
				continue
			}
			if sp.Start+eps < root.Start || sp.Start+sp.Dur > rootEnd+eps {
				t.Fatalf("alert record %d: span %q [%v,%v]us escapes the end-to-end span [%v,%v]us",
					i, sp.Stage, sp.Start, sp.Start+sp.Dur, root.Start, rootEnd)
			}
			if sp.Parent == 0 {
				childSum += sp.Dur
			}
		}
		if childSum > root.Dur+eps {
			t.Fatalf("alert record %d: direct children sum to %vus inside a %vus root", i, childSum, root.Dur)
		}
		if !names["detector.classify"] || !names["ml.score"] || !names["journal.write"] {
			t.Fatalf("alert record %d: stage set incomplete: %+v", i, names)
		}
		// The trace must tell the same incremental-vs-rebuild story as
		// the provenance record.
		if rec.Incremental && !names["features.incremental"] {
			t.Fatalf("alert record %d says incremental, trace has no features.incremental span: %+v", i, names)
		}
		if !rec.Incremental && !names["features.rebuild"] {
			t.Fatalf("alert record %d says rebuild, trace has no features.rebuild span: %+v", i, names)
		}
		// Shard attribution rides on the root span's arg; with 2 shards
		// it must be a valid shard base.
		if root.Arg < 0 || root.Arg >= 2 {
			t.Fatalf("alert record %d: root span shard attribution arg=%d with 2 shards", i, root.Arg)
		}
	}

	if got := int(reg.CounterValue("dynaminer_trace_alerts_total")); got != len(alerts) {
		t.Fatalf("trace alert counter = %d, run raised %d alerts", got, len(alerts))
	}
	// Every pipeline stage histogram observed traffic during the run.
	for _, h := range []string{
		"dynaminer_stage_detector_process_seconds",
		"dynaminer_stage_detector_classify_seconds",
		"dynaminer_stage_ml_score_seconds",
		"dynaminer_stage_journal_write_seconds",
	} {
		found := false
		for _, s := range reg.Snapshot() {
			if s.Name == h {
				found = true
			}
		}
		if !found {
			t.Errorf("stage histogram %s missing from the registry", h)
		}
	}
}

// TestAdminSurfaceUnderConcurrentLoad hammers /metrics, /snapshot and
// /trace while the monitor classifies live traffic; run under -race in
// tier-2 CI, it pins both data-race freedom and that every concurrent
// read returns a well-formed document.
func TestAdminSurfaceUnderConcurrentLoad(t *testing.T) {
	eps, clf := obsFixture(t)
	reg := NewMetricsRegistry()
	tracer := NewTracer(reg, TraceConfig{Sample: 2})
	cfg := MonitorConfig{RedirectThreshold: 1, Shards: 2, Metrics: reg, Tracer: tracer}
	m := NewMonitor(cfg, clf)
	addr, err := m.StartAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	stream := obsStream(eps)
	done := make(chan struct{})
	var wg sync.WaitGroup
	fetch := func(path string) (int, []byte, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}
	hammer := func(path string, check func([]byte) error) {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			code, body, err := fetch(path)
			if err != nil || code != http.StatusOK {
				t.Errorf("GET %s = %d, %v", path, code, err)
				return
			}
			if err := check(body); err != nil {
				t.Errorf("GET %s returned a malformed document: %v\n%s", path, err, body)
				return
			}
		}
	}
	wg.Add(3)
	go hammer("/metrics", func(b []byte) error {
		_, err := obs.ParseExposition(bytes.NewReader(b))
		return err
	})
	go hammer("/snapshot", func(b []byte) error {
		var snap []obs.MetricSnapshot
		return json.Unmarshal(b, &snap)
	})
	go hammer("/trace", func(b []byte) error {
		var file struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		return json.Unmarshal(b, &file)
	})

	for _, tx := range stream {
		m.Process(tx)
	}
	close(done)
	wg.Wait()

	// The flame summary and id-resolution formats must also hold up
	// after the run.
	code, body, err := fetch("/trace?format=flame")
	if err != nil || code != http.StatusOK || !strings.Contains(string(body), "traces kept:") {
		t.Fatalf("/trace?format=flame = %d, %v\n%s", code, err, body)
	}
	snaps := tracer.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("Sample=2 over the seeded run kept no traces")
	}
}
