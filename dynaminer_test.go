package dynaminer

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// trainedOnSmallCorpus builds a classifier for the public-API tests.
func trainedOnSmallCorpus(t *testing.T) (*Classifier, []Episode) {
	t.Helper()
	eps := Corpus(CorpusConfig{Seed: 11, Infections: 120, Benign: 140})
	c, err := Train(eps, TrainConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c, eps
}

func TestTrainAndClassify(t *testing.T) {
	c, eps := trainedOnSmallCorpus(t)
	correct, total := 0, 0
	for i := range eps {
		w := EpisodeWCG(&eps[i])
		if c.IsInfection(w) == eps[i].Infection {
			correct++
		}
		total++
	}
	if frac := float64(correct) / float64(total); frac < 0.95 {
		t.Fatalf("training-set accuracy = %v, want >= 0.95", frac)
	}
}

func TestScoreRange(t *testing.T) {
	c, eps := trainedOnSmallCorpus(t)
	for i := range eps[:20] {
		s := c.Score(EpisodeWCG(&eps[i]))
		if s < 0 || s > 1 {
			t.Fatalf("score out of range: %v", s)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, eps := trainedOnSmallCorpus(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range eps[:10] {
		w := EpisodeWCG(&eps[i])
		if c.Score(w) != loaded.Score(w) {
			t.Fatal("loaded model scores differ")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	c, _ := trainedOnSmallCorpus(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestPCAPRoundTripThroughPublicAPI(t *testing.T) {
	eps := Corpus(CorpusConfig{Seed: 21, Infections: 2, Benign: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "ep.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].WritePCAP(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	txs, err := ReadPCAPFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != len(eps[0].Txs) {
		t.Fatalf("recovered %d transactions, want %d", len(txs), len(eps[0].Txs))
	}
	w := BuildWCG(txs)
	v := ExtractFeatures(w)
	if len(v) != NumFeatures {
		t.Fatalf("feature vector length %d", len(v))
	}
	if FeatureName(0) != "Origin" {
		t.Fatal("feature names broken")
	}
}

func TestReadPCAPFileErrors(t *testing.T) {
	if _, err := ReadPCAPFile("/nonexistent/capture.pcap"); err == nil {
		t.Fatal("missing capture must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.pcap")
	if err := os.WriteFile(bad, []byte("not a pcap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPCAPFile(bad); err == nil {
		t.Fatal("garbage capture must error")
	}
}

func TestMonitorEndToEnd(t *testing.T) {
	eps := Corpus(CorpusConfig{Seed: 31, Infections: 120, Benign: 140})
	c, err := TrainForMonitoring(eps, TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Replay fresh infections through the monitor.
	fresh := Corpus(CorpusConfig{Seed: 99, Infections: 30, Benign: 30})
	detected, falseAlerts := 0, 0
	for i := range fresh {
		m := NewMonitor(MonitorConfig{RedirectThreshold: 1}, c)
		alerts := m.ProcessAll(fresh[i].Txs)
		if fresh[i].Infection && len(alerts) > 0 {
			detected++
		}
		if !fresh[i].Infection && len(alerts) > 0 {
			falseAlerts++
		}
	}
	if detected < 20 {
		t.Fatalf("monitor detected %d/30 infections", detected)
	}
	if falseAlerts > 5 {
		t.Fatalf("monitor false-alerted on %d/30 benign sessions", falseAlerts)
	}
}

func TestMonitorProcessPCAP(t *testing.T) {
	eps := Corpus(CorpusConfig{Seed: 41, Infections: 80, Benign: 80})
	c, err := TrainForMonitoring(eps, TrainConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Find an infection episode, write it as pcap, replay forensically.
	var inf *Episode
	fresh := Corpus(CorpusConfig{Seed: 77, Infections: 10, Benign: 0})
	for i := range fresh {
		if fresh[i].Infection {
			inf = &fresh[i]
			break
		}
	}
	var buf bytes.Buffer
	if err := inf.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(MonitorConfig{RedirectThreshold: 1}, c)
	alerts, err := m.ProcessPCAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Transactions == 0 {
		t.Fatal("no transactions processed")
	}
	t.Logf("pcap replay: %d transactions, %d alerts", st.Transactions, len(alerts))
}

func TestEpisodeDatasetAndForestAccess(t *testing.T) {
	c, eps := trainedOnSmallCorpus(t)
	ds := EpisodeDataset(eps[:20])
	if ds.Len() != 20 || ds.NumFeatures() != NumFeatures {
		t.Fatalf("dataset shape %d x %d", ds.Len(), ds.NumFeatures())
	}
	if c.Forest() == nil || c.Forest().NumTrees() != 20 {
		t.Fatal("forest accessor broken")
	}
	x := ExtractFeatures(EpisodeWCG(&eps[0]))
	if s := c.ScoreFeatures(x); s != c.Score(EpisodeWCG(&eps[0])) {
		t.Fatalf("ScoreFeatures %v disagrees with Score", s)
	}
}

func TestMonitorSingleProcess(t *testing.T) {
	eps := Corpus(CorpusConfig{Seed: 31, Infections: 60, Benign: 60})
	c, err := TrainForMonitoring(eps, TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(MonitorConfig{RedirectThreshold: 1}, c)
	var inf *Episode
	for i := range eps {
		if eps[i].Infection {
			inf = &eps[i]
			break
		}
	}
	total := 0
	for _, tx := range inf.Txs {
		total += len(m.Process(tx))
	}
	if m.Stats().Transactions != len(inf.Txs) {
		t.Fatalf("processed %d, want %d", m.Stats().Transactions, len(inf.Txs))
	}
	_ = total
}

func TestNewProxyDefaults(t *testing.T) {
	c, _ := trainedOnSmallCorpus(t)
	p := NewProxy(ProxyConfig{}, c)
	if p == nil {
		t.Fatal("nil proxy")
	}
	if st := p.Stats(); st.Requests != 0 {
		t.Fatalf("fresh proxy stats %+v", st)
	}
}
